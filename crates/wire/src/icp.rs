//! ICP version 2 (RFC 2186) with the paper's directory-update extension.
//!
//! The RFC 2186 header (20 bytes):
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +---------------+---------------+-------------------------------+
//! |    Opcode     |    Version    |         Message Length        |
//! +---------------+---------------+-------------------------------+
//! |                       Request Number                          |
//! +---------------------------------------------------------------+
//! |                            Options                            |
//! +---------------------------------------------------------------+
//! |                          Option Data                          |
//! +---------------------------------------------------------------+
//! |                      Sender Host Address                      |
//! +---------------------------------------------------------------+
//! ```
//!
//! Queries carry a requester host address and a null-terminated URL;
//! replies carry the URL. The paper adds `ICP_OP_DIRUPDATE` whose
//! payload is an extension header — `Function_Num` (u16),
//! `Function_Bits` (u16), `BitArray_Size_InBits` (u32), `Generation`
//! (u32), `Seq` (u32), `Number_of_Updates` (u32) — followed by one
//! 32-bit word per bit flip: most-significant bit = new value, low 31
//! bits = index (Section VI-A). Every record is absolute and every
//! message repeats the hash spec, but deltas only compose when applied
//! in order onto the right baseline: `Generation` names the publisher's
//! bitmap lineage (bumped on restart or spec change) and `Seq` numbers
//! each datagram within it, so a receiver can detect a lost or
//! reordered datagram instead of silently drifting. On a detected gap
//! the receiver sends `ICP_OP_DIRREQ` — a 4-byte payload carrying the
//! generation it last saw — and the publisher answers with a DIRFULL
//! bitmap that restates the whole array.
//!
//! Big-N extension: a requester that understands Golomb–Rice-coded
//! bitmaps sets [`ICP_FLAG_GR_OK`] in its DIRREQ options word, and the
//! publisher may answer with `ICP_OP_DIRFULL_GR` instead of raw
//! DIRFULL. Its payload is the same extension header followed by a
//! segment descriptor — `First_Bit` (u32, word-aligned), `Seg_Bits`
//! (u32), `Ones` (u32), `Rice` (u8) — and the coded gap stream
//! (`Number_of_Updates` counts its bytes). A bitmap too large for one
//! datagram ships as several segments with the same `(generation,
//! seq)` stamp, `First_Bit` advancing; receivers install only once the
//! segments cover the whole array. Publishers that never saw the flag
//! fall back to raw DIRFULL, so legacy peers keep working.

use sc_bloom::Flip;

/// Append big-endian integers to a byte buffer (the tiny subset of the
/// `bytes` crate this codec needs).
fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}
fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Checked big-endian reads over a byte slice; every short read maps to
/// [`IcpError::TruncatedPayload`] instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }
    fn remaining(&self) -> usize {
        self.buf.len()
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], IcpError> {
        if self.buf.len() < n {
            return Err(IcpError::TruncatedPayload);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn get_u8(&mut self) -> Result<u8, IcpError> {
        Ok(self.take(1)?[0])
    }
    fn get_u16(&mut self) -> Result<u16, IcpError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }
    fn get_u32(&mut self) -> Result<u32, IcpError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn get_u64_le(&mut self) -> Result<u64, IcpError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }
}

/// ICP protocol version implemented (RFC 2186).
pub const ICP_VERSION: u8 = 2;

/// Size of the fixed RFC 2186 header.
pub const HEADER_LEN: usize = 20;

/// Size of the paper's DIRUPDATE extension header (with the
/// generation/seq pair that sequences delta delivery).
pub const DIRUPDATE_HEADER_LEN: usize = 20;

/// Size of the DIRREQ payload: the generation last seen.
pub const DIRREQ_PAYLOAD_LEN: usize = 4;

/// Size of the DIRFULL_GR segment descriptor that follows the
/// DIRUPDATE extension header: `First_Bit` + `Seg_Bits` + `Ones`
/// (u32 each) + `Rice` (u8).
pub const DIRFULL_GR_SEGMENT_LEN: usize = 13;

/// Options-word flag a DIRREQ sets to advertise that its sender can
/// decode `ICP_OP_DIRFULL_GR` answers. RFC 2186 reserves the top bits
/// (HIT_OBJ, SRC_RTT); the summary-cache extension claims bit 0.
pub const ICP_FLAG_GR_OK: u32 = 0x0000_0001;

/// Wire byte for [`Opcode::Query`] (RFC 2186).
pub const ICP_OP_QUERY: u8 = 1;
/// Wire byte for [`Opcode::Hit`] (RFC 2186).
pub const ICP_OP_HIT: u8 = 2;
/// Wire byte for [`Opcode::Miss`] (RFC 2186).
pub const ICP_OP_MISS: u8 = 3;
/// Wire byte for [`Opcode::Err`] (RFC 2186).
pub const ICP_OP_ERR: u8 = 4;
/// Wire byte for [`Opcode::Secho`] (RFC 2186).
pub const ICP_OP_SECHO: u8 = 10;
/// Wire byte for [`Opcode::MissNoFetch`] (RFC 2186).
pub const ICP_OP_MISS_NOFETCH: u8 = 21;
/// Wire byte for [`Opcode::Denied`] (RFC 2186).
pub const ICP_OP_DENIED: u8 = 22;
/// Wire byte for [`Opcode::DirUpdate`] (summary-cache extension).
pub const ICP_OP_DIRUPDATE: u8 = 32;
/// Wire byte for [`Opcode::DirFull`] (summary-cache extension).
pub const ICP_OP_DIRFULL: u8 = 33;
/// Wire byte for [`Opcode::DirReq`] (summary-cache extension).
pub const ICP_OP_DIRREQ: u8 = 34;
/// Wire byte for [`Opcode::DirFullGr`] (summary-cache extension):
/// a Golomb–Rice-coded full-bitmap segment.
pub const ICP_OP_DIRFULL_GR: u8 = 35;

/// Message opcodes. 1–22 are RFC 2186; 32–34 are the summary-cache
/// extension range. The wire bytes live in the `ICP_OP_*` constants,
/// which the gate's wire-exhaustiveness rule requires to appear in both
/// [`Opcode::to_u8`] and [`Opcode::from_u8`] and in at least one test —
/// a new opcode cannot ship half-wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Membership query for a URL.
    Query,
    /// Fresh copy present.
    Hit,
    /// Not cached.
    Miss,
    /// Protocol error.
    Err,
    /// Source echo — the keep-alive Squid peers exchange.
    Secho,
    /// Not cached, and the responder declines to fetch it.
    MissNoFetch,
    /// Request refused.
    Denied,
    /// Paper Section VI-A: incremental directory update (bit flips).
    DirUpdate,
    /// Companion full-bitmap update (bootstrap / recovery), in the
    /// spirit of Squid 1.2's cache digests.
    DirFull,
    /// Resync request: "send me your full bitmap" — emitted on first
    /// contact or when a seq gap / generation change is detected.
    DirReq,
    /// Golomb–Rice-coded full-bitmap segment: the compressed answer to
    /// a DIRREQ whose sender advertised [`ICP_FLAG_GR_OK`].
    DirFullGr,
}

impl Opcode {
    /// Encode this opcode as its wire byte.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => ICP_OP_QUERY,
            Opcode::Hit => ICP_OP_HIT,
            Opcode::Miss => ICP_OP_MISS,
            Opcode::Err => ICP_OP_ERR,
            Opcode::Secho => ICP_OP_SECHO,
            Opcode::MissNoFetch => ICP_OP_MISS_NOFETCH,
            Opcode::Denied => ICP_OP_DENIED,
            Opcode::DirUpdate => ICP_OP_DIRUPDATE,
            Opcode::DirFull => ICP_OP_DIRFULL,
            Opcode::DirReq => ICP_OP_DIRREQ,
            Opcode::DirFullGr => ICP_OP_DIRFULL_GR,
        }
    }

    /// Decode an opcode byte.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            ICP_OP_QUERY => Opcode::Query,
            ICP_OP_HIT => Opcode::Hit,
            ICP_OP_MISS => Opcode::Miss,
            ICP_OP_ERR => Opcode::Err,
            ICP_OP_SECHO => Opcode::Secho,
            ICP_OP_MISS_NOFETCH => Opcode::MissNoFetch,
            ICP_OP_DENIED => Opcode::Denied,
            ICP_OP_DIRUPDATE => Opcode::DirUpdate,
            ICP_OP_DIRFULL => Opcode::DirFull,
            ICP_OP_DIRREQ => Opcode::DirReq,
            ICP_OP_DIRFULL_GR => Opcode::DirFullGr,
            _ => return None,
        })
    }
}

/// The payload of a directory update: the self-describing hash spec and
/// either bit flips (incremental) or the whole bitmap (full).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirUpdate {
    /// `Function_Num`: number of hash functions.
    pub function_num: u16,
    /// `Function_Bits`: digest bits per function.
    pub function_bits: u16,
    /// `BitArray_Size_InBits`.
    pub bit_array_size: u32,
    /// `Generation`: the publisher's bitmap lineage — bumped on daemon
    /// restart or hash-spec change. Deltas from one generation never
    /// apply to a replica of another.
    pub generation: u32,
    /// `Seq`: datagram number within the generation, strictly
    /// sequential. A receiver expecting `n` that sees `n+2` lost a
    /// datagram and must resync.
    pub seq: u32,
    /// The update content.
    pub content: DirContent,
}

/// Incremental or full-bitmap content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirContent {
    /// Bit flips to apply (DIRUPDATE).
    Flips(Vec<Flip>),
    /// The complete bit array, packed little-endian u64 words (DIRFULL).
    Bitmap(Vec<u64>),
    /// One Golomb–Rice-coded segment of the bit array (DIRFULL_GR).
    /// `bit_array_size` in the carrying [`DirUpdate`] is the *whole*
    /// array's length; a single segment spanning it is the common case,
    /// and oversized bitmaps split into several word-aligned segments
    /// sharing one `(generation, seq)` stamp.
    CompressedBitmap {
        /// First bit this segment covers (multiple of 64).
        first_bit: u32,
        /// Bits this segment covers (`first_bit + seg_bits` never
        /// exceeds `bit_array_size`).
        seg_bits: u32,
        /// Set bits coded in the stream.
        ones: u32,
        /// Rice parameter (gap low-bits); ≤ 63 by wire contract.
        rice: u8,
        /// The coded gap stream.
        data: Vec<u8>,
    },
}

/// A decoded ICP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcpMessage {
    /// "Do you have this URL?" — sent on a local miss (ICP) or to a
    /// summary candidate (SC-ICP).
    Query {
        /// Query id, echoed in replies.
        request_number: u32,
        /// Original requester address (RFC 2186 carries it before the URL).
        requester: u32,
        /// The document asked about.
        url: String,
    },
    /// "Yes, fresh copy here."
    Hit {
        /// Echoed query id.
        request_number: u32,
        /// Echoed URL.
        url: String,
    },
    /// "No."
    Miss {
        /// Echoed query id.
        request_number: u32,
        /// Echoed URL.
        url: String,
    },
    /// "No, and don't ask me to fetch it."
    MissNoFetch {
        /// Echoed query id.
        request_number: u32,
        /// Echoed URL.
        url: String,
    },
    /// Refused.
    Denied {
        /// Echoed query id.
        request_number: u32,
        /// Echoed URL.
        url: String,
    },
    /// Protocol error report.
    Err {
        /// Echoed query id.
        request_number: u32,
        /// Echoed URL (may be empty).
        url: String,
    },
    /// Keep-alive ping (the no-ICP baseline's only inter-proxy traffic).
    Secho {
        /// Ping id (unused, 0 by convention).
        request_number: u32,
        /// Unused; empty on the wire.
        url: String,
    },
    /// Summary directory update.
    DirUpdate {
        /// Message id (not echoed; updates are fire-and-forget).
        request_number: u32,
        /// The publishing proxy's id (from the sender-host field).
        sender: u32,
        /// The update payload.
        update: DirUpdate,
    },
    /// Resync request: the sender's replica of the addressee is missing
    /// or has detected a gap; please restate the full bitmap (DIRFULL).
    DirReq {
        /// Message id.
        request_number: u32,
        /// The requesting proxy's id (from the sender-host field).
        sender: u32,
        /// The generation the requester last saw (0 = none yet); lets
        /// the publisher's logs distinguish bootstrap from loss.
        generation: u32,
        /// [`ICP_FLAG_GR_OK`] in the options word: the requester can
        /// decode compressed (DIRFULL_GR) answers. Publishers fall
        /// back to raw DIRFULL when unset.
        accepts_gr: bool,
    },
}

/// Decode errors. Every malformed input maps to one of these; decoding
/// never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcpError {
    /// Fewer than 20 bytes.
    TruncatedHeader,
    /// Header's message length disagrees with the buffer.
    LengthMismatch {
        /// Length the header claims.
        header: u16,
        /// Bytes actually received.
        actual: usize,
    },
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Unsupported version byte.
    BadVersion(u8),
    /// Payload shorter than its opcode requires.
    TruncatedPayload,
    /// URL bytes were not valid UTF-8.
    BadUrl,
    /// URL missing its null terminator.
    UnterminatedUrl,
    /// DIRUPDATE payload inconsistent (count vs bytes, bitmap size).
    BadDirUpdate(&'static str),
    /// Message would exceed the u16 length field.
    TooLarge(usize),
}

impl std::fmt::Display for IcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IcpError::TruncatedHeader => write!(f, "ICP header truncated"),
            IcpError::LengthMismatch { header, actual } => {
                write!(f, "header claims {header} bytes, datagram has {actual}")
            }
            IcpError::UnknownOpcode(op) => write!(f, "unknown ICP opcode {op}"),
            IcpError::BadVersion(v) => write!(f, "unsupported ICP version {v}"),
            IcpError::TruncatedPayload => write!(f, "ICP payload truncated"),
            IcpError::BadUrl => write!(f, "URL is not valid UTF-8"),
            IcpError::UnterminatedUrl => write!(f, "URL missing null terminator"),
            IcpError::BadDirUpdate(what) => write!(f, "malformed DIRUPDATE: {what}"),
            IcpError::TooLarge(n) => write!(f, "message of {n} bytes exceeds ICP's 64 KiB"),
        }
    }
}

impl std::error::Error for IcpError {}

impl IcpMessage {
    /// Encode to a datagram. `sender` fills the RFC header's sender-host
    /// field for the reply/query opcodes (DirUpdate carries its own).
    pub fn encode(&self, sender: u32) -> Result<Vec<u8>, IcpError> {
        let mut out = Vec::new();
        self.encode_into(sender, &mut out)?;
        Ok(out)
    }

    /// [`encode`](Self::encode) into a caller-owned buffer: `out` is
    /// cleared first and its capacity reused, so a warm send scratch
    /// encodes a steady stream of datagrams without heap traffic. The
    /// body is written in place behind a zeroed header which is patched
    /// once the total length is known.
    pub fn encode_into(&self, sender: u32, out: &mut Vec<u8>) -> Result<(), IcpError> {
        out.clear();
        out.resize(HEADER_LEN, 0);
        let mut body = out;
        let mut options = 0u32;
        let (opcode, request_number, sender_host) = match self {
            IcpMessage::Query {
                request_number,
                requester,
                url,
            } => {
                put_u32(&mut body, *requester);
                put_url(&mut body, url);
                (Opcode::Query, *request_number, sender)
            }
            IcpMessage::Hit { request_number, url } => {
                put_url(&mut body, url);
                (Opcode::Hit, *request_number, sender)
            }
            IcpMessage::Miss { request_number, url } => {
                put_url(&mut body, url);
                (Opcode::Miss, *request_number, sender)
            }
            IcpMessage::MissNoFetch { request_number, url } => {
                put_url(&mut body, url);
                (Opcode::MissNoFetch, *request_number, sender)
            }
            IcpMessage::Denied { request_number, url } => {
                put_url(&mut body, url);
                (Opcode::Denied, *request_number, sender)
            }
            IcpMessage::Err { request_number, url } => {
                put_url(&mut body, url);
                (Opcode::Err, *request_number, sender)
            }
            IcpMessage::Secho { request_number, url } => {
                put_url(&mut body, url);
                (Opcode::Secho, *request_number, sender)
            }
            IcpMessage::DirUpdate {
                request_number,
                sender: s,
                update,
            } => {
                put_u16(&mut body, update.function_num);
                put_u16(&mut body, update.function_bits);
                put_u32(&mut body, update.bit_array_size);
                put_u32(&mut body, update.generation);
                put_u32(&mut body, update.seq);
                let opcode = match &update.content {
                    DirContent::Flips(flips) => {
                        put_u32(&mut body, flips.len() as u32);
                        for f in flips {
                            put_u32(&mut body, f.to_wire());
                        }
                        Opcode::DirUpdate
                    }
                    DirContent::Bitmap(words) => {
                        put_u32(&mut body, words.len() as u32);
                        for w in words {
                            put_u64_le(&mut body, *w);
                        }
                        Opcode::DirFull
                    }
                    DirContent::CompressedBitmap {
                        first_bit,
                        seg_bits,
                        ones,
                        rice,
                        data,
                    } => {
                        put_u32(&mut body, data.len() as u32);
                        put_u32(&mut body, *first_bit);
                        put_u32(&mut body, *seg_bits);
                        put_u32(&mut body, *ones);
                        put_u8(&mut body, *rice);
                        body.extend_from_slice(data);
                        Opcode::DirFullGr
                    }
                };
                (opcode, *request_number, *s)
            }
            IcpMessage::DirReq {
                request_number,
                sender: s,
                generation,
                accepts_gr,
            } => {
                put_u32(&mut body, *generation);
                if *accepts_gr {
                    options |= ICP_FLAG_GR_OK;
                }
                (Opcode::DirReq, *request_number, *s)
            }
        };
        let total = body.len();
        if total > u16::MAX as usize {
            body.clear();
            return Err(IcpError::TooLarge(total));
        }
        body[0] = opcode.to_u8();
        body[1] = ICP_VERSION;
        body[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        body[4..8].copy_from_slice(&request_number.to_be_bytes());
        body[8..12].copy_from_slice(&options.to_be_bytes());
        body[12..16].copy_from_slice(&0u32.to_be_bytes()); // option data
        body[16..20].copy_from_slice(&sender_host.to_be_bytes());
        Ok(())
    }

    /// Decode one datagram.
    pub fn decode(datagram: &[u8]) -> Result<IcpMessage, IcpError> {
        if datagram.len() < HEADER_LEN {
            return Err(IcpError::TruncatedHeader);
        }
        let mut buf = Reader::new(datagram);
        let opcode_byte = buf.get_u8()?;
        let version = buf.get_u8()?;
        if version != ICP_VERSION {
            return Err(IcpError::BadVersion(version));
        }
        let msg_len = buf.get_u16()?;
        if msg_len as usize != datagram.len() {
            return Err(IcpError::LengthMismatch {
                header: msg_len,
                actual: datagram.len(),
            });
        }
        let request_number = buf.get_u32()?;
        let options = buf.get_u32()?;
        let _option_data = buf.get_u32()?;
        let sender_host = buf.get_u32()?;
        let opcode = Opcode::from_u8(opcode_byte).ok_or(IcpError::UnknownOpcode(opcode_byte))?;
        match opcode {
            Opcode::Query => {
                let requester = buf.get_u32()?;
                let url = take_url(&mut buf)?;
                Ok(IcpMessage::Query {
                    request_number,
                    requester,
                    url,
                })
            }
            Opcode::Hit => Ok(IcpMessage::Hit {
                request_number,
                url: take_url(&mut buf)?,
            }),
            Opcode::Miss => Ok(IcpMessage::Miss {
                request_number,
                url: take_url(&mut buf)?,
            }),
            Opcode::MissNoFetch => Ok(IcpMessage::MissNoFetch {
                request_number,
                url: take_url(&mut buf)?,
            }),
            Opcode::Denied => Ok(IcpMessage::Denied {
                request_number,
                url: take_url(&mut buf)?,
            }),
            Opcode::Err => Ok(IcpMessage::Err {
                request_number,
                url: take_url(&mut buf)?,
            }),
            Opcode::Secho => Ok(IcpMessage::Secho {
                request_number,
                url: take_url(&mut buf)?,
            }),
            Opcode::DirUpdate | Opcode::DirFull | Opcode::DirFullGr => {
                if buf.remaining() < DIRUPDATE_HEADER_LEN {
                    return Err(IcpError::TruncatedPayload);
                }
                let function_num = buf.get_u16()?;
                let function_bits = buf.get_u16()?;
                let bit_array_size = buf.get_u32()?;
                let generation = buf.get_u32()?;
                let seq = buf.get_u32()?;
                let count = buf.get_u32()? as usize;
                let content = match opcode {
                    Opcode::DirUpdate => {
                        if buf.remaining() != count.saturating_mul(4) {
                            return Err(IcpError::BadDirUpdate("flip count vs payload size"));
                        }
                        let mut flips = Vec::with_capacity(count);
                        for _ in 0..count {
                            flips.push(Flip::from_wire(buf.get_u32()?));
                        }
                        DirContent::Flips(flips)
                    }
                    Opcode::DirFull => {
                        if buf.remaining() != count.saturating_mul(8) {
                            return Err(IcpError::BadDirUpdate("word count vs payload size"));
                        }
                        if count != (bit_array_size as usize).div_ceil(64) {
                            return Err(IcpError::BadDirUpdate("bitmap words vs bit array size"));
                        }
                        let mut words = Vec::with_capacity(count);
                        for _ in 0..count {
                            words.push(buf.get_u64_le()?);
                        }
                        DirContent::Bitmap(words)
                    }
                    _ => {
                        // DIRFULL_GR: count is the coded-stream byte
                        // length; a 13-byte segment descriptor precedes
                        // the stream.
                        if buf.remaining() != DIRFULL_GR_SEGMENT_LEN.saturating_add(count) {
                            return Err(IcpError::BadDirUpdate("coded bytes vs payload size"));
                        }
                        let first_bit = buf.get_u32()?;
                        let seg_bits = buf.get_u32()?;
                        let ones = buf.get_u32()?;
                        let rice = buf.get_u8()?;
                        if rice > 63 {
                            return Err(IcpError::BadDirUpdate("rice parameter above 63"));
                        }
                        if first_bit % 64 != 0 {
                            return Err(IcpError::BadDirUpdate("segment not word aligned"));
                        }
                        if seg_bits == 0
                            || first_bit as u64 + seg_bits as u64 > bit_array_size as u64
                        {
                            return Err(IcpError::BadDirUpdate("segment outside bit array"));
                        }
                        if ones > seg_bits {
                            return Err(IcpError::BadDirUpdate("more ones than segment bits"));
                        }
                        DirContent::CompressedBitmap {
                            first_bit,
                            seg_bits,
                            ones,
                            rice,
                            data: buf.take(count)?.to_vec(),
                        }
                    }
                };
                Ok(IcpMessage::DirUpdate {
                    request_number,
                    sender: sender_host,
                    update: DirUpdate {
                        function_num,
                        function_bits,
                        bit_array_size,
                        generation,
                        seq,
                        content,
                    },
                })
            }
            Opcode::DirReq => {
                if buf.remaining() != DIRREQ_PAYLOAD_LEN {
                    return Err(IcpError::TruncatedPayload);
                }
                let generation = buf.get_u32()?;
                Ok(IcpMessage::DirReq {
                    request_number,
                    sender: sender_host,
                    generation,
                    accepts_gr: options & ICP_FLAG_GR_OK != 0,
                })
            }
        }
    }
}

fn put_url(buf: &mut Vec<u8>, url: &str) {
    buf.extend_from_slice(url.as_bytes());
    buf.push(0);
}

fn take_url(buf: &mut Reader<'_>) -> Result<String, IcpError> {
    let bytes = buf.take(buf.remaining())?;
    let nul = bytes
        .iter()
        .position(|&b| b == 0)
        .ok_or(IcpError::UnterminatedUrl)?;
    let url = std::str::from_utf8(&bytes[..nul]).map_err(|_| IcpError::BadUrl)?;
    Ok(url.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, vec_of};

    fn roundtrip(msg: IcpMessage) {
        let bytes = msg.encode(0xC0A80001).unwrap();
        let back = IcpMessage::decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn every_opcode_constant_roundtrips_through_both_sides() {
        for (op, byte) in [
            (Opcode::Query, ICP_OP_QUERY),
            (Opcode::Hit, ICP_OP_HIT),
            (Opcode::Miss, ICP_OP_MISS),
            (Opcode::Err, ICP_OP_ERR),
            (Opcode::Secho, ICP_OP_SECHO),
            (Opcode::MissNoFetch, ICP_OP_MISS_NOFETCH),
            (Opcode::Denied, ICP_OP_DENIED),
            (Opcode::DirUpdate, ICP_OP_DIRUPDATE),
            (Opcode::DirFull, ICP_OP_DIRFULL),
            (Opcode::DirReq, ICP_OP_DIRREQ),
            (Opcode::DirFullGr, ICP_OP_DIRFULL_GR),
        ] {
            assert_eq!(op.to_u8(), byte);
            assert_eq!(Opcode::from_u8(byte), Some(op));
        }
        // The RFC 2186 / summary-cache extension values are wire
        // contract, not implementation detail.
        assert_eq!(ICP_OP_QUERY, 1);
        assert_eq!(ICP_OP_DIRUPDATE, 32);
        assert_eq!(ICP_OP_DIRFULL_GR, 35);
        for unused in [0u8, 5, 9, 23, 31, 36, 255] {
            assert_eq!(Opcode::from_u8(unused), None);
        }
    }

    #[test]
    fn query_roundtrip_and_layout() {
        let msg = IcpMessage::Query {
            request_number: 42,
            requester: 0x0A000001,
            url: "http://example.com/x".into(),
        };
        let bytes = msg.encode(7).unwrap();
        assert_eq!(bytes[0], 1, "opcode");
        assert_eq!(bytes[1], 2, "version");
        let len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        assert_eq!(len, bytes.len());
        assert_eq!(len, 20 + 4 + 20 + 1, "header + requester + url + NUL");
        assert_eq!(*bytes.last().unwrap(), 0, "null-terminated URL");
        roundtrip(msg);
    }

    #[test]
    fn reply_roundtrips() {
        for make in [
            |u: String| IcpMessage::Hit { request_number: 1, url: u },
            |u: String| IcpMessage::Miss { request_number: 2, url: u },
            |u: String| IcpMessage::MissNoFetch { request_number: 3, url: u },
            |u: String| IcpMessage::Denied { request_number: 4, url: u },
            |u: String| IcpMessage::Err { request_number: 5, url: u },
        ] {
            roundtrip(make("http://a/b?q=1".into()));
        }
    }

    #[test]
    fn dirupdate_roundtrip() {
        let msg = IcpMessage::DirUpdate {
            request_number: 9,
            sender: 0x7F000001,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 1 << 20,
                generation: 0xA1B2C3D4,
                seq: 17,
                content: DirContent::Flips(vec![
                    Flip::set(0),
                    Flip::clear(12345),
                    Flip::set((1 << 20) - 1),
                ]),
            },
        };
        let bytes = msg.encode(0).unwrap();
        assert_eq!(bytes[0], 32, "ICP_OP_DIRUPDATE");
        assert_eq!(bytes.len(), 20 + 20 + 3 * 4);
        // Generation and Seq sit between BitArray_Size and the count.
        assert_eq!(&bytes[28..32], &0xA1B2C3D4u32.to_be_bytes());
        assert_eq!(&bytes[32..36], &17u32.to_be_bytes());
        roundtrip(msg);
    }

    #[test]
    fn dirfull_roundtrip() {
        let msg = IcpMessage::DirUpdate {
            request_number: 10,
            sender: 1,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 130, // 3 words
                generation: 1,
                seq: 0,
                content: DirContent::Bitmap(vec![u64::MAX, 0, 0b11]),
            },
        };
        let bytes = msg.encode(0).unwrap();
        assert_eq!(bytes[0], 33, "DIRFULL");
        roundtrip(msg);
    }

    #[test]
    fn dirreq_roundtrip_and_layout() {
        let msg = IcpMessage::DirReq {
            request_number: 55,
            sender: 3,
            generation: 0xFEEDFACE,
            accepts_gr: false,
        };
        let bytes = msg.encode(0).unwrap();
        assert_eq!(bytes[0], 34, "ICP_OP_DIRREQ");
        assert_eq!(bytes.len(), HEADER_LEN + DIRREQ_PAYLOAD_LEN);
        assert_eq!(&bytes[8..12], &0u32.to_be_bytes(), "no options flagged");
        assert_eq!(&bytes[16..20], &3u32.to_be_bytes(), "requester id in sender-host");
        assert_eq!(&bytes[20..24], &0xFEEDFACEu32.to_be_bytes());
        roundtrip(msg);
    }

    #[test]
    fn dirreq_gr_capability_rides_the_options_word() {
        let msg = IcpMessage::DirReq {
            request_number: 56,
            sender: 4,
            generation: 12,
            accepts_gr: true,
        };
        let bytes = msg.encode(0).unwrap();
        assert_eq!(
            &bytes[8..12],
            &ICP_FLAG_GR_OK.to_be_bytes(),
            "GR capability is options bit 0"
        );
        roundtrip(msg);
        // A legacy requester (flag clear) decodes as accepts_gr = false:
        // negotiation falls back to raw DIRFULL.
        let mut legacy = bytes.clone();
        legacy[8..12].copy_from_slice(&0u32.to_be_bytes());
        match IcpMessage::decode(&legacy).unwrap() {
            IcpMessage::DirReq { accepts_gr, .. } => assert!(!accepts_gr),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn dirfull_gr_roundtrip_and_layout() {
        let msg = IcpMessage::DirUpdate {
            request_number: 11,
            sender: 2,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 512,
                generation: 0xA1B2C3D4,
                seq: 21,
                content: DirContent::CompressedBitmap {
                    first_bit: 0,
                    seg_bits: 512,
                    ones: 3,
                    rice: 5,
                    data: vec![0xAB, 0xCD, 0xEF],
                },
            },
        };
        let bytes = msg.encode(0).unwrap();
        assert_eq!(bytes[0], ICP_OP_DIRFULL_GR, "ICP_OP_DIRFULL_GR");
        assert_eq!(
            bytes.len(),
            HEADER_LEN + DIRUPDATE_HEADER_LEN + DIRFULL_GR_SEGMENT_LEN + 3
        );
        // Number_of_Updates counts coded bytes; the segment descriptor
        // follows the extension header.
        assert_eq!(&bytes[36..40], &3u32.to_be_bytes(), "coded byte count");
        assert_eq!(&bytes[40..44], &0u32.to_be_bytes(), "first_bit");
        assert_eq!(&bytes[44..48], &512u32.to_be_bytes(), "seg_bits");
        assert_eq!(&bytes[48..52], &3u32.to_be_bytes(), "ones");
        assert_eq!(bytes[52], 5, "rice");
        roundtrip(msg);
    }

    #[test]
    fn dirfull_gr_decode_validations() {
        let mk = |first_bit, seg_bits, ones, rice| IcpMessage::DirUpdate {
            request_number: 0,
            sender: 0,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 512,
                generation: 1,
                seq: 0,
                content: DirContent::CompressedBitmap {
                    first_bit,
                    seg_bits,
                    ones,
                    rice,
                    data: vec![0u8; 4],
                },
            },
        };
        let expect_bad = |msg: IcpMessage, why: &str| {
            let bytes = msg.encode(0).unwrap();
            assert!(
                matches!(IcpMessage::decode(&bytes), Err(IcpError::BadDirUpdate(_))),
                "{why}"
            );
        };
        expect_bad(mk(0, 512, 0, 64), "rice above 63 must be rejected");
        expect_bad(mk(7, 64, 0, 3), "unaligned first_bit");
        expect_bad(mk(0, 0, 0, 3), "zero-length segment");
        expect_bad(mk(448, 128, 0, 3), "segment past the bit array");
        expect_bad(mk(0, 64, 65, 3), "more ones than segment bits");
        // Word-aligned interior segment is legal.
        roundtrip(mk(64, 128, 7, 3));
        // Claimed coded length must match the carried bytes exactly.
        let mut bytes = mk(0, 512, 0, 3).encode(0).unwrap();
        bytes[36..40].copy_from_slice(&9u32.to_be_bytes());
        assert_eq!(
            IcpMessage::decode(&bytes),
            Err(IcpError::BadDirUpdate("coded bytes vs payload size"))
        );
    }

    #[test]
    fn dirreq_payload_must_be_exactly_one_word() {
        let ok = IcpMessage::DirReq {
            request_number: 1,
            sender: 2,
            generation: 7,
            accepts_gr: true,
        }
        .encode(0)
        .unwrap();
        // Trailing junk after the generation word is rejected even when
        // the length field is consistent.
        let mut long = ok.clone();
        long.extend_from_slice(&[0, 0]);
        let n = long.len() as u16;
        long[2..4].copy_from_slice(&n.to_be_bytes());
        assert_eq!(IcpMessage::decode(&long), Err(IcpError::TruncatedPayload));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            IcpMessage::decode(&[1, 2, 3]),
            Err(IcpError::TruncatedHeader)
        );
        let ok = IcpMessage::Hit {
            request_number: 0,
            url: "http://a/".into(),
        }
        .encode(0)
        .unwrap();
        // Wrong version.
        let mut bad = ok.to_vec();
        bad[1] = 3;
        assert_eq!(IcpMessage::decode(&bad), Err(IcpError::BadVersion(3)));
        // Wrong length field.
        let mut bad = ok.to_vec();
        bad[2] = 0xFF;
        bad[3] = 0xFF;
        assert!(matches!(
            IcpMessage::decode(&bad),
            Err(IcpError::LengthMismatch { .. })
        ));
        // Unknown opcode.
        let mut bad = ok.to_vec();
        bad[0] = 99;
        assert_eq!(IcpMessage::decode(&bad), Err(IcpError::UnknownOpcode(99)));
        // Unterminated URL.
        let mut bad = ok.to_vec();
        let n = bad.len();
        bad[n - 1] = b'x';
        assert_eq!(IcpMessage::decode(&bad), Err(IcpError::UnterminatedUrl));
    }

    #[test]
    fn dirupdate_length_checks() {
        let msg = IcpMessage::DirUpdate {
            request_number: 0,
            sender: 0,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 64,
                generation: 2,
                seq: 3,
                content: DirContent::Flips(vec![Flip::set(1)]),
            },
        };
        let mut bytes = msg.encode(0).unwrap().to_vec();
        // Claim two flips but carry one.
        let off = 20 + 16; // Number_of_Updates field offset
        bytes[off..off + 4].copy_from_slice(&2u32.to_be_bytes());
        assert!(matches!(
            IcpMessage::decode(&bytes),
            Err(IcpError::BadDirUpdate(_))
        ));
    }

    #[test]
    fn oversized_message_rejected_at_encode() {
        let msg = IcpMessage::DirUpdate {
            request_number: 0,
            sender: 0,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 1 << 24,
                generation: 1,
                seq: 1,
                content: DirContent::Flips((0..20_000).map(Flip::set).collect()),
            },
        };
        assert!(matches!(msg.encode(0), Err(IcpError::TooLarge(_))));
    }

    #[test]
    fn dirupdate_roundtrips_both_variants_same_header() {
        // The two DirContent variants carry the same self-describing
        // filter header; both must survive the wire byte-for-byte.
        let header = |content| DirUpdate {
            function_num: 10,
            function_bits: 20,
            bit_array_size: 192, // exactly 3 words, no overhang
            generation: u32::MAX,
            seq: u32::MAX,
            content,
        };
        for content in [
            DirContent::Flips(vec![Flip::set(0), Flip::clear(191)]),
            DirContent::Flips(Vec::new()), // empty delta is legal
            DirContent::Bitmap(vec![1, 2, 3]),
        ] {
            roundtrip(IcpMessage::DirUpdate {
                request_number: 77,
                sender: 0xDEADBEEF,
                update: header(content),
            });
        }
    }

    #[test]
    fn truncated_dirupdate_datagrams_never_decode() {
        // Sweep every proper prefix of valid DIRUPDATE and DIRFULL
        // datagrams: each must be rejected (and never panic), whether or
        // not the length field is patched to match the truncation.
        let msgs = [
            IcpMessage::DirUpdate {
                request_number: 3,
                sender: 4,
                update: DirUpdate {
                    function_num: 4,
                    function_bits: 32,
                    bit_array_size: 4096,
                    generation: 9,
                    seq: 42,
                    content: DirContent::Flips(vec![Flip::set(5), Flip::clear(9), Flip::set(77)]),
                },
            },
            IcpMessage::DirUpdate {
                request_number: 3,
                sender: 4,
                update: DirUpdate {
                    function_num: 4,
                    function_bits: 32,
                    bit_array_size: 130,
                    generation: 9,
                    seq: 43,
                    content: DirContent::Bitmap(vec![7, 8, 9]),
                },
            },
            IcpMessage::DirReq {
                request_number: 5,
                sender: 6,
                generation: 9,
                accepts_gr: true,
            },
            IcpMessage::DirUpdate {
                request_number: 3,
                sender: 4,
                update: DirUpdate {
                    function_num: 4,
                    function_bits: 32,
                    bit_array_size: 192,
                    generation: 9,
                    seq: 44,
                    content: DirContent::CompressedBitmap {
                        first_bit: 64,
                        seg_bits: 128,
                        ones: 2,
                        rice: 4,
                        data: vec![0x11, 0x22, 0x33, 0x44, 0x55],
                    },
                },
            },
        ];
        for msg in msgs {
            let bytes = msg.encode(0).unwrap();
            for cut in 0..bytes.len() {
                let mut prefix = bytes[..cut].to_vec();
                assert!(
                    IcpMessage::decode(&prefix).is_err(),
                    "prefix of {cut} bytes decoded"
                );
                // Patch the length field so header and datagram agree;
                // the payload checks must still catch the loss.
                if cut >= HEADER_LEN {
                    prefix[2..4].copy_from_slice(&(cut as u16).to_be_bytes());
                    assert!(
                        IcpMessage::decode(&prefix).is_err(),
                        "length-patched prefix of {cut} bytes decoded"
                    );
                }
            }
        }
    }

    #[test]
    fn bitmap_word_count_must_match_bit_array_size() {
        let msg = IcpMessage::DirUpdate {
            request_number: 0,
            sender: 0,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 128, // needs exactly 2 words
                generation: 1,
                seq: 0,
                content: DirContent::Bitmap(vec![1, 2]),
            },
        };
        let mut bytes = msg.encode(0).unwrap().to_vec();
        // Claim a larger bit array than the 2 carried words cover.
        bytes[24..28].copy_from_slice(&192u32.to_be_bytes());
        assert_eq!(
            IcpMessage::decode(&bytes),
            Err(IcpError::BadDirUpdate("bitmap words vs bit array size"))
        );
    }

    #[test]
    fn oversized_delta_list_boundary() {
        // The 16-bit length field caps a DIRUPDATE at
        // (u16::MAX - headers) / 4 flips; one past that must fail at
        // encode, the boundary itself must round-trip.
        let max_flips = (u16::MAX as usize - HEADER_LEN - DIRUPDATE_HEADER_LEN) / 4;
        let mk = |n: usize| IcpMessage::DirUpdate {
            request_number: 0,
            sender: 0,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 1 << 26,
                generation: 1,
                seq: n as u32,
                content: DirContent::Flips((0..n as u32).map(Flip::set).collect()),
            },
        };
        roundtrip(mk(max_flips));
        assert!(matches!(mk(max_flips + 1).encode(0), Err(IcpError::TooLarge(_))));
    }

    #[test]
    fn prop_query_roundtrip() {
        const URL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:/._?&=%-";
        check("icp_query_roundtrip", 256, |rng| {
            let url: String = (0..rng.gen_range(0usize..200))
                .map(|_| URL_CHARS[rng.gen_range(0..URL_CHARS.len())] as char)
                .collect();
            let msg = IcpMessage::Query {
                request_number: rng.next_u32(),
                requester: rng.next_u32(),
                url,
            };
            let bytes = msg.encode(0).unwrap();
            assert_eq!(IcpMessage::decode(&bytes).unwrap(), msg);
        });
    }

    #[test]
    fn prop_dirupdate_roundtrip() {
        check("icp_dirupdate_roundtrip", 256, |rng| {
            let words = vec_of(rng, 0..64, |r| r.next_u32());
            let msg = IcpMessage::DirUpdate {
                request_number: 1,
                sender: 2,
                update: DirUpdate {
                    function_num: rng.gen_range(1u16..16),
                    function_bits: 32,
                    bit_array_size: rng.gen_range(1u32..1_000_000),
                    generation: rng.next_u32(),
                    seq: rng.next_u32(),
                    content: DirContent::Flips(words.into_iter().map(Flip::from_wire).collect()),
                },
            };
            let bytes = msg.encode(0).unwrap();
            assert_eq!(IcpMessage::decode(&bytes).unwrap(), msg);
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        check("icp_decode_never_panics", 512, |rng| {
            let data = vec_of(rng, 0..256, |r| r.gen_range(0u8..=255));
            let _ = IcpMessage::decode(&data);
        });
    }
}
