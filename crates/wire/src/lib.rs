#![warn(missing_docs)]

//! Wire formats for the summary-cache proxy.
//!
//! * [`icp`] — the Internet Cache Protocol version 2 (RFC 2186) message
//!   codec, extended with the paper's `ICP_OP_DIRUPDATE` opcode
//!   (Section VI-A) carrying hash-function specs and bit-flip deltas,
//!   plus a companion full-bitmap opcode in the spirit of Squid's cache
//!   digests for bootstrap and recovery.
//! * [`http`] — the minimal HTTP/1.x subset the prototype proxy speaks:
//!   GET requests, status responses, `Content-Length` framing, and the
//!   handful of headers the experiments use.
//!
//! Both codecs operate on plain byte slices, are total (every byte
//! sequence either decodes or yields a typed error), and round-trip
//! exactly — properties the property-test suites pin down.

pub mod http;
pub mod icp;

pub use icp::{DirUpdate, IcpError, IcpMessage, Opcode, ICP_VERSION};
