#![warn(missing_docs)]

//! RFC 1321 MD5 message digest, implemented from scratch.
//!
//! The summary-cache paper (Fan et al., SIGCOMM '98) hashes document URLs
//! with MD5 and derives the Bloom-filter hash functions from disjoint bit
//! groups of the 128-bit digest (Section V-D / VI-A). When more than 128
//! bits are needed, further digests are produced from the URL concatenated
//! with itself.
//!
//! MD5 is long broken as a cryptographic hash; the paper itself only relies
//! on its uniformity, and so do we. This crate exists so the reproduction
//! has no external hashing dependency and so the exact bit-group derivation
//! of the paper's wire protocol can be tested against known digests.
//!
//! # Example
//!
//! ```
//! let d = sc_md5::md5(b"abc");
//! assert_eq!(sc_md5::to_hex(&d), "900150983cd24fb0d6963f7d28e17f72");
//! ```

mod digest;
mod stream;
mod x4;

pub use digest::{md5, Digest, DIGEST_LEN};
pub use stream::{blocks_hashed, Md5};
pub use x4::md5_x4;

/// Render a digest (or any byte slice) as lowercase hexadecimal.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Digest of `data` repeated `times` times, without materializing the
/// repetition.
///
/// The paper extends the 128-bit digest by hashing "the URL concatenated
/// with itself" when a summary needs more hash bits than one digest
/// provides (Section V-E); this helper computes MD5(url ‖ url ‖ …)
/// streaming.
pub fn md5_repeated(data: &[u8], times: usize) -> Digest {
    // Small key × few copies still fits one padded block (the common
    // case for the first extension digest of a short URL id): build the
    // repetition on the stack and take the single-compression path.
    let total = data.len().saturating_mul(times);
    if total <= stream::ONESHOT_MAX {
        let mut buf = [0u8; stream::ONESHOT_MAX];
        for t in 0..times {
            buf[t * data.len()..(t + 1) * data.len()].copy_from_slice(data);
        }
        return stream::oneshot_short(&buf[..total]);
    }
    let mut ctx = Md5::new();
    for _ in 0..times {
        ctx.update(data);
    }
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn repeated_matches_manual_concatenation() {
        let url = b"http://www.cs.wisc.edu/~cao/papers/summary-cache/";
        let twice: Vec<u8> = url.iter().chain(url.iter()).copied().collect();
        assert_eq!(md5_repeated(url, 2), md5(&twice));
        assert_eq!(md5_repeated(url, 1), md5(url));
    }

    #[test]
    fn repeated_zero_times_is_empty_digest() {
        assert_eq!(md5_repeated(b"anything", 0), md5(b""));
    }

    #[test]
    fn repeated_matches_manual_concatenation_at_many_copies() {
        // Copy counts ≥ 4 cross several 64-byte block boundaries for a
        // typical URL; the streaming context must agree with hashing the
        // materialized key‖key‖… buffer at every count.
        let url = b"http://www.cs.wisc.edu/~cao/papers/summary-cache/";
        for copies in [4usize, 5, 7, 16] {
            let manual: Vec<u8> = url
                .iter()
                .cycle()
                .take(url.len() * copies)
                .copied()
                .collect();
            assert_eq!(md5_repeated(url, copies), md5(&manual), "copies {copies}");
        }
    }

    #[test]
    fn blocks_hashed_counts_per_thread_compressions() {
        // One short digest = exactly one 64-byte block (padding included);
        // a 100-byte message pads to two blocks.
        let before = blocks_hashed();
        let _ = md5(b"abc");
        assert_eq!(blocks_hashed() - before, 1);
        let before = blocks_hashed();
        let _ = md5(&[0u8; 100]);
        assert_eq!(blocks_hashed() - before, 2);
    }
}
