//! One-shot MD5 of an in-memory buffer.

use crate::stream::{oneshot_short, Md5, ONESHOT_MAX};

/// Length of an MD5 digest in bytes.
pub const DIGEST_LEN: usize = 16;

/// A 128-bit MD5 digest.
pub type Digest = [u8; DIGEST_LEN];

/// Compute the MD5 digest of `data` in one call.
///
/// Messages short enough to pad into a single block (≤ 55 bytes —
/// most URLs) skip the streaming context entirely.
///
/// ```
/// assert_eq!(sc_md5::to_hex(&sc_md5::md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
pub fn md5(data: &[u8]) -> Digest {
    if data.len() <= ONESHOT_MAX {
        return oneshot_short(data);
    }
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    /// The complete RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_suite() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(to_hex(&md5(input)), want, "input {:?}", input);
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 64-byte block and 56-byte padding boundaries
        // exercise every padding branch.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128, 1000] {
            let data = vec![0xa5u8; len];
            let d = md5(&data);
            // Self-consistency with the streaming interface, split oddly.
            let mut ctx = Md5::new();
            let (a, b) = data.split_at(len / 3);
            ctx.update(a);
            ctx.update(b);
            assert_eq!(ctx.finalize(), d, "len {}", len);
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a collision test, just a sanity check that nearby URLs hash
        // to different digests.
        let a = md5(b"http://example.com/a.html");
        let b = md5(b"http://example.com/b.html");
        assert_ne!(a, b);
    }
}
