//! Incremental (streaming) MD5 per RFC 1321.

use crate::digest::{Digest, DIGEST_LEN};
use std::cell::Cell;

const BLOCK_LEN: usize = 64;

thread_local! {
    /// Per-thread count of 64-byte blocks compressed; see
    /// [`blocks_hashed`].
    static BLOCKS_HASHED: Cell<u64> = const { Cell::new(0) };
}

/// Total 64-byte MD5 blocks this *thread* has compressed since it
/// started — the cost counter behind every digest.
///
/// This is the hot-path accounting hook: a probe pipeline that hashes a
/// URL once per request instead of once per peer shows up here as a
/// proportional drop in blocks per request, which tests can assert
/// without relying on wall-clock noise. Thread-local so parallel test
/// threads never pollute each other's counts; the increment is a plain
/// (non-atomic) cell bump, noise against the ~hundreds of cycles one
/// block compression costs.
pub fn blocks_hashed() -> u64 {
    BLOCKS_HASHED.with(|c| c.get())
}

/// Per-round shift amounts, RFC 1321 section 3.4.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// Sine-derived constants K[i] = floor(2^32 * abs(sin(i+1))).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Incremental MD5 context.
///
/// ```
/// let mut ctx = sc_md5::Md5::new();
/// ctx.update(b"ab");
/// ctx.update(b"c");
/// assert_eq!(ctx.finalize(), sc_md5::md5(b"abc"));
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh context with the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return; // everything fit in the partial buffer
            }
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            let block: &[u8; BLOCK_LEN] = block.try_into().unwrap();
            self.compress(block);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Pad, append the length, and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // 0x80 then zeros until 56 mod 64, then the 64-bit little-endian
        // bit length. The captured bit_len covers the message only, not
        // this padding.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Core compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        BLOCKS_HASHED.with(|c| c.set(c.get() + 1));
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5;
    use sc_util::prop::{check, vec_of};

    #[test]
    fn streaming_equals_oneshot_on_random_splits() {
        let data: Vec<u8> = (0..700u32).map(|i| (i * 31 % 251) as u8).collect();
        let want = md5(&data);
        for split in [0, 1, 63, 64, 65, 350, 699, 700] {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split {}", split);
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut ctx = Md5::new();
        for b in data.iter() {
            ctx.update(std::slice::from_ref(b));
        }
        assert_eq!(
            crate::to_hex(&ctx.finalize()),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn prop_streaming_equals_oneshot() {
        check("md5_streaming_equals_oneshot", 256, |rng| {
            let data = vec_of(rng, 0..512, |r| r.gen_range(0u32..=255) as u8);
            let cut = rng.gen_range(0usize..512).min(data.len());
            let mut ctx = Md5::new();
            ctx.update(&data[..cut]);
            ctx.update(&data[cut..]);
            assert_eq!(ctx.finalize(), md5(&data));
        });
    }

    #[test]
    fn prop_three_way_split() {
        check("md5_three_way_split", 256, |rng| {
            let data = vec_of(rng, 0..1024, |r| r.gen_range(0u32..=255) as u8);
            let third = data.len() / 3;
            let mut ctx = Md5::new();
            ctx.update(&data[..third]);
            ctx.update(&data[third..2 * third]);
            ctx.update(&data[2 * third..]);
            assert_eq!(ctx.finalize(), md5(&data));
        });
    }
}
