//! Incremental (streaming) MD5 per RFC 1321.

use crate::digest::{Digest, DIGEST_LEN};
use std::cell::Cell;

const BLOCK_LEN: usize = 64;

thread_local! {
    /// Per-thread count of 64-byte blocks compressed; see
    /// [`blocks_hashed`].
    static BLOCKS_HASHED: Cell<u64> = const { Cell::new(0) };
}

/// Total 64-byte MD5 blocks this *thread* has compressed since it
/// started — the cost counter behind every digest.
///
/// This is the hot-path accounting hook: a probe pipeline that hashes a
/// URL once per request instead of once per peer shows up here as a
/// proportional drop in blocks per request, which tests can assert
/// without relying on wall-clock noise. Thread-local so parallel test
/// threads never pollute each other's counts; the increment is a plain
/// (non-atomic) cell bump, noise against the ~hundreds of cycles one
/// block compression costs.
pub fn blocks_hashed() -> u64 {
    BLOCKS_HASHED.with(|c| c.get())
}

/// Credit `n` compressed blocks to this thread's counter. The 4-lane
/// kernel counts only the *real* blocks it absorbed (finished lanes
/// ride along as dead weight), so the cost accounting stays identical
/// to four scalar digests.
pub(crate) fn bump_blocks(n: u64) {
    BLOCKS_HASHED.with(|c| c.set(c.get() + n));
}

/// RFC 1321 initial chaining state.
pub(crate) const INIT: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// Longest message whose padded form still fits a single 64-byte
/// block: 55 bytes of message + 0x80 + the 8-byte length.
pub(crate) const ONESHOT_MAX: usize = 55;

/// Per-round shift amounts, RFC 1321 section 3.4.
pub(crate) const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// Sine-derived constants K[i] = floor(2^32 * abs(sin(i+1))).
pub(crate) const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Incremental MD5 context.
///
/// ```
/// let mut ctx = sc_md5::Md5::new();
/// ctx.update(b"ab");
/// ctx.update(b"c");
/// assert_eq!(ctx.finalize(), sc_md5::md5(b"abc"));
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh context with the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: INIT,
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return; // everything fit in the partial buffer
            }
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            let block: &[u8; BLOCK_LEN] = block.try_into().unwrap();
            self.compress(block);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Pad, append the length, and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // 0x80 then zeros until 56 mod 64, then the 64-bit little-endian
        // bit length. The captured bit_len covers the message only, not
        // this padding.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Core compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        compress_block(&mut self.state, block);
    }
}

/// One compression round trip: fold a 64-byte block into `state`.
/// Shared by the streaming context, the short-message one-shot path,
/// and the 4-lane straggler drain.
pub(crate) fn compress_block(state: &mut [u32; 4], block: &[u8; BLOCK_LEN]) {
    BLOCKS_HASHED.with(|c| c.set(c.get() + 1));
    let mut m = [0u32; 16];
    for (i, w) in m.iter_mut().enumerate() {
        *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let [mut a, mut b, mut c, mut d] = *state;
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        b = b.wrapping_add(
            a.wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]),
        );
        a = tmp;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
}

/// Serialize a chaining state into the little-endian digest bytes.
pub(crate) fn digest_of(state: [u32; 4]) -> Digest {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// The `i`-th 64-byte block of `data` *after* RFC 1321 padding, where
/// `total` is the padded block count `(len + 8) / 64 + 1`. Blocks
/// before the tail are verbatim message bytes; the tail block(s) carry
/// 0x80, zeros, and the little-endian bit length in the last one.
pub(crate) fn padded_block(data: &[u8], i: usize, total: usize) -> [u8; BLOCK_LEN] {
    let mut block = [0u8; BLOCK_LEN];
    let start = i * BLOCK_LEN;
    if start + BLOCK_LEN <= data.len() {
        block.copy_from_slice(&data[start..start + BLOCK_LEN]);
        return block;
    }
    if start <= data.len() {
        let tail = &data[start..];
        block[..tail.len()].copy_from_slice(tail);
        block[tail.len()] = 0x80;
    }
    if i + 1 == total {
        block[56..].copy_from_slice(&(data.len() as u64).wrapping_mul(8).to_le_bytes());
    }
    block
}

/// Padded block count for a message of `len` bytes.
pub(crate) fn padded_blocks(len: usize) -> usize {
    (len + 8) / BLOCK_LEN + 1
}

/// One-shot digest of a message short enough to pad into a single
/// block (≤ [`ONESHOT_MAX`] bytes): no context setup, no partial-buffer
/// bookkeeping, no byte-at-a-time padding loop — build the padded
/// block in place and compress once.
pub(crate) fn oneshot_short(data: &[u8]) -> Digest {
    debug_assert!(data.len() <= ONESHOT_MAX);
    let block = padded_block(data, 0, 1);
    let mut state = INIT;
    compress_block(&mut state, &block);
    digest_of(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5;
    use sc_util::prop::{check, vec_of};

    #[test]
    fn streaming_equals_oneshot_on_random_splits() {
        let data: Vec<u8> = (0..700u32).map(|i| (i * 31 % 251) as u8).collect();
        let want = md5(&data);
        for split in [0, 1, 63, 64, 65, 350, 699, 700] {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split {}", split);
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut ctx = Md5::new();
        for b in data.iter() {
            ctx.update(std::slice::from_ref(b));
        }
        assert_eq!(
            crate::to_hex(&ctx.finalize()),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn prop_streaming_equals_oneshot() {
        check("md5_streaming_equals_oneshot", 256, |rng| {
            let data = vec_of(rng, 0..512, |r| r.gen_range(0u32..=255) as u8);
            let cut = rng.gen_range(0usize..512).min(data.len());
            let mut ctx = Md5::new();
            ctx.update(&data[..cut]);
            ctx.update(&data[cut..]);
            assert_eq!(ctx.finalize(), md5(&data));
        });
    }

    #[test]
    fn prop_oneshot_fast_path_equals_streaming() {
        // The ≤55-byte single-block path must agree with the streaming
        // context bit-for-bit at every length, including the empty
        // message and both sides of the padding boundary.
        for len in 0..=ONESHOT_MAX {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 37 % 251) as u8).collect();
            let mut ctx = Md5::new();
            ctx.update(&data);
            assert_eq!(oneshot_short(&data), ctx.finalize(), "len {len}");
        }
        check("md5_oneshot_equals_streaming", 256, |rng| {
            let data = vec_of(rng, 0..ONESHOT_MAX + 1, |r| r.gen_range(0u32..=255) as u8);
            let mut ctx = Md5::new();
            ctx.update(&data);
            assert_eq!(oneshot_short(&data), ctx.finalize());
        });
    }

    #[test]
    fn oneshot_costs_exactly_one_block() {
        let before = blocks_hashed();
        let _ = oneshot_short(b"http://server-7.example.com/doc/42");
        assert_eq!(blocks_hashed() - before, 1);
    }

    #[test]
    fn padded_block_tiles_match_streaming_buffer() {
        // Every (length, block index) pair the 4-lane driver can produce
        // must reproduce what the streaming padder would have fed.
        for len in [0usize, 1, 55, 56, 63, 64, 65, 119, 120, 128, 200] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 13 % 251) as u8).collect();
            let total = padded_blocks(len);
            let mut state = INIT;
            for i in 0..total {
                compress_block(&mut state, &padded_block(&data, i, total));
            }
            let mut ctx = Md5::new();
            ctx.update(&data);
            assert_eq!(digest_of(state), ctx.finalize(), "len {len}");
        }
    }

    #[test]
    fn prop_three_way_split() {
        check("md5_three_way_split", 256, |rng| {
            let data = vec_of(rng, 0..1024, |r| r.gen_range(0u32..=255) as u8);
            let third = data.len() / 3;
            let mut ctx = Md5::new();
            ctx.update(&data[..third]);
            ctx.update(&data[third..2 * third]);
            ctx.update(&data[2 * third..]);
            assert_eq!(ctx.finalize(), md5(&data));
        });
    }
}
