//! Four-lane MD5.
//!
//! One MD5 lane is latency-bound: every round's `b` feeds the next
//! round, so a single digest leaves most of the core's integer units
//! idle. Interleaving four *independent* messages through the
//! compression function turns that dependency chain into four parallel
//! chains — the per-round state lives in `[u32; 4]` arrays with
//! fixed-bound inner loops, which the compiler unrolls (and, since the
//! shift amount is uniform across lanes, can auto-vectorize to one
//! 4×u32 vector op per step).
//!
//! Lanes may have different lengths: the driver walks padded blocks in
//! lockstep, snapshots a lane's digest the moment its final block is
//! absorbed, and lets finished lanes ride along as dead weight (their
//! post-snapshot state is garbage and never read). Only *real* blocks
//! are credited to [`crate::blocks_hashed`], so the cost accounting a
//! batch caller sees is identical to four scalar digests.

use crate::digest::Digest;
use crate::stream::{bump_blocks, digest_of, padded_block, padded_blocks, INIT, K, S};

/// Digest four independent messages in one interleaved pass.
///
/// Bit-for-bit equal to `[md5(a), md5(b), md5(c), md5(d)]`, roughly
/// 3× the throughput on same-length single-block inputs (URLs).
pub fn md5_x4(inputs: [&[u8]; 4]) -> [Digest; 4] {
    let totals: [usize; 4] = core::array::from_fn(|l| padded_blocks(inputs[l].len()));
    let max_total = totals.iter().copied().max().unwrap_or(1);
    let mut states = [INIT; 4];
    let mut out = [[0u8; 16]; 4];
    let mut real_blocks = 0u64;
    for i in 0..max_total {
        let mut blocks = [[0u8; 64]; 4];
        for l in 0..4 {
            if i < totals[l] {
                blocks[l] = padded_block(inputs[l], i, totals[l]);
                real_blocks += 1;
            }
        }
        compress_x4(&mut states, &blocks);
        for l in 0..4 {
            if i + 1 == totals[l] {
                out[l] = digest_of(states[l]);
            }
        }
    }
    bump_blocks(real_blocks);
    out
}

/// The 4-lane compression step: fold one 64-byte block per lane into
/// the four chaining states, all lanes advancing in lockstep.
///
/// Fully unrolled: each of the 64 steps is one straight-line
/// elementwise pass over `[u32; 4]` lane vectors (the classic
/// rotating-role formulation, so no register shuffles between steps),
/// with the message schedule transposed lane-major → word-major so a
/// step's `m[g]` load is one contiguous 4×u32 vector. The round
/// constants and shift amounts are literal per step, which is what
/// lets the backend keep all four chains in vector registers.
fn compress_x4(states: &mut [[u32; 4]; 4], blocks: &[[u8; 64]; 4]) {
    // Word-major message schedule: m[g] holds message word g of every
    // lane side by side.
    let mut m = [[0u32; 4]; 16];
    for g in 0..16 {
        for l in 0..4 {
            m[g][l] = u32::from_le_bytes(blocks[l][g * 4..g * 4 + 4].try_into().unwrap());
        }
    }
    let mut a: [u32; 4] = core::array::from_fn(|l| states[l][0]);
    let mut b: [u32; 4] = core::array::from_fn(|l| states[l][1]);
    let mut c: [u32; 4] = core::array::from_fn(|l| states[l][2]);
    let mut d: [u32; 4] = core::array::from_fn(|l| states[l][3]);

    #[inline(always)]
    fn f1(b: u32, c: u32, d: u32) -> u32 {
        (b & c) | (!b & d)
    }
    #[inline(always)]
    fn f2(b: u32, c: u32, d: u32) -> u32 {
        (d & b) | (!d & c)
    }
    #[inline(always)]
    fn f3(b: u32, c: u32, d: u32) -> u32 {
        b ^ c ^ d
    }
    #[inline(always)]
    fn f4(b: u32, c: u32, d: u32) -> u32 {
        c ^ (b | !d)
    }

    /// One step: `$a = $b + (($a + f($b,$c,$d) + K[i] + m[g]) <<< S[i])`
    /// across all four lanes. Callers rotate which variable plays `$a`.
    macro_rules! q {
        ($f:ident, $a:ident, $b:ident, $c:ident, $d:ident, $g:literal, $i:literal) => {
            for l in 0..4 {
                $a[l] = $b[l].wrapping_add(
                    $a[l]
                        .wrapping_add($f($b[l], $c[l], $d[l]))
                        .wrapping_add(K[$i])
                        .wrapping_add(m[$g][l])
                        .rotate_left(S[$i]),
                );
            }
        };
    }

    // Round 1: g = i.
    q!(f1, a, b, c, d, 0, 0);
    q!(f1, d, a, b, c, 1, 1);
    q!(f1, c, d, a, b, 2, 2);
    q!(f1, b, c, d, a, 3, 3);
    q!(f1, a, b, c, d, 4, 4);
    q!(f1, d, a, b, c, 5, 5);
    q!(f1, c, d, a, b, 6, 6);
    q!(f1, b, c, d, a, 7, 7);
    q!(f1, a, b, c, d, 8, 8);
    q!(f1, d, a, b, c, 9, 9);
    q!(f1, c, d, a, b, 10, 10);
    q!(f1, b, c, d, a, 11, 11);
    q!(f1, a, b, c, d, 12, 12);
    q!(f1, d, a, b, c, 13, 13);
    q!(f1, c, d, a, b, 14, 14);
    q!(f1, b, c, d, a, 15, 15);
    // Round 2: g = (5i + 1) mod 16.
    q!(f2, a, b, c, d, 1, 16);
    q!(f2, d, a, b, c, 6, 17);
    q!(f2, c, d, a, b, 11, 18);
    q!(f2, b, c, d, a, 0, 19);
    q!(f2, a, b, c, d, 5, 20);
    q!(f2, d, a, b, c, 10, 21);
    q!(f2, c, d, a, b, 15, 22);
    q!(f2, b, c, d, a, 4, 23);
    q!(f2, a, b, c, d, 9, 24);
    q!(f2, d, a, b, c, 14, 25);
    q!(f2, c, d, a, b, 3, 26);
    q!(f2, b, c, d, a, 8, 27);
    q!(f2, a, b, c, d, 13, 28);
    q!(f2, d, a, b, c, 2, 29);
    q!(f2, c, d, a, b, 7, 30);
    q!(f2, b, c, d, a, 12, 31);
    // Round 3: g = (3i + 5) mod 16.
    q!(f3, a, b, c, d, 5, 32);
    q!(f3, d, a, b, c, 8, 33);
    q!(f3, c, d, a, b, 11, 34);
    q!(f3, b, c, d, a, 14, 35);
    q!(f3, a, b, c, d, 1, 36);
    q!(f3, d, a, b, c, 4, 37);
    q!(f3, c, d, a, b, 7, 38);
    q!(f3, b, c, d, a, 10, 39);
    q!(f3, a, b, c, d, 13, 40);
    q!(f3, d, a, b, c, 0, 41);
    q!(f3, c, d, a, b, 3, 42);
    q!(f3, b, c, d, a, 6, 43);
    q!(f3, a, b, c, d, 9, 44);
    q!(f3, d, a, b, c, 12, 45);
    q!(f3, c, d, a, b, 15, 46);
    q!(f3, b, c, d, a, 2, 47);
    // Round 4: g = 7i mod 16.
    q!(f4, a, b, c, d, 0, 48);
    q!(f4, d, a, b, c, 7, 49);
    q!(f4, c, d, a, b, 14, 50);
    q!(f4, b, c, d, a, 5, 51);
    q!(f4, a, b, c, d, 12, 52);
    q!(f4, d, a, b, c, 3, 53);
    q!(f4, c, d, a, b, 10, 54);
    q!(f4, b, c, d, a, 1, 55);
    q!(f4, a, b, c, d, 8, 56);
    q!(f4, d, a, b, c, 15, 57);
    q!(f4, c, d, a, b, 6, 58);
    q!(f4, b, c, d, a, 13, 59);
    q!(f4, a, b, c, d, 4, 60);
    q!(f4, d, a, b, c, 11, 61);
    q!(f4, c, d, a, b, 2, 62);
    q!(f4, b, c, d, a, 9, 63);

    for l in 0..4 {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{blocks_hashed, md5};
    use sc_util::prop::{check, vec_of};

    #[test]
    fn four_lanes_equal_four_scalar_digests() {
        let a = b"".as_slice();
        let b = b"http://server-3.example.com/a".as_slice();
        let c = vec![0xabu8; 200];
        let d = vec![0x55u8; 64];
        let got = md5_x4([a, b, &c, &d]);
        assert_eq!(got, [md5(a), md5(b), md5(&c), md5(&d)]);
    }

    #[test]
    fn length_edge_cases_per_lane() {
        // Every lane combination around the padding boundaries: a lane
        // that finishes first must keep its snapshotted digest while the
        // stragglers keep compressing.
        let lens = [0usize, 1, 55, 56, 63, 64, 65, 119, 120, 128, 321];
        for w in lens.windows(4) {
            let data: Vec<Vec<u8>> = w
                .iter()
                .map(|&n| (0..n as u32).map(|i| (i * 17 % 251) as u8).collect())
                .collect();
            let got = md5_x4([&data[0], &data[1], &data[2], &data[3]]);
            for l in 0..4 {
                assert_eq!(got[l], md5(&data[l]), "lens {w:?} lane {l}");
            }
        }
    }

    #[test]
    fn prop_x4_equals_scalar() {
        check("md5_x4_equals_scalar", 128, |rng| {
            let data: Vec<Vec<u8>> = (0..4)
                .map(|_| vec_of(rng, 0..300, |r| r.gen_range(0u32..=255) as u8))
                .collect();
            let got = md5_x4([&data[0], &data[1], &data[2], &data[3]]);
            for l in 0..4 {
                assert_eq!(got[l], md5(&data[l]));
            }
        });
    }

    #[test]
    fn block_accounting_counts_real_blocks_only() {
        // Four single-block URLs: 4 blocks, same as scalar.
        let before = blocks_hashed();
        let _ = md5_x4([b"a", b"bb", b"ccc", b"dddd"]);
        assert_eq!(blocks_hashed() - before, 4);

        // Mixed lengths: 1 + 1 + 2 + 4 real blocks; the lockstep
        // driver's dead-weight lanes must not inflate the count.
        let long = vec![0u8; 200];
        let before = blocks_hashed();
        let _ = md5_x4([b"a", b"bb", &vec![0u8; 64], &long]);
        assert_eq!(blocks_hashed() - before, 8);
    }
}
