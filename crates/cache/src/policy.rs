//! Alternative cache replacement policies.
//!
//! Section III caveats the Fig. 1 results: "the results are obtained
//! under the LRU replacement algorithm … Different replacement
//! algorithms may give different results", citing Cao & Irani's
//! GreedyDual-Size. This module provides the classic web-caching
//! policies so that sensitivity can actually be measured
//! (`cargo run -p sc-bench --bin replacement`):
//!
//! * **LRU** — evict the least recently used (the baseline);
//! * **LFU** — evict the least frequently used (recency tiebreak);
//! * **Size** — evict the largest document first;
//! * **GreedyDual-Size** — evict the lowest `H = L + cost/size`,
//!   inflating `L` to the evicted `H` (uniform cost = 1, the
//!   hit-ratio-optimizing variant).
//!
//! [`PolicyCache`] keeps a priority index over the entries; all four
//! policies reduce to "evict the minimum priority", differing only in
//! how priorities are computed and refreshed on access.

use crate::web::{DocMeta, Lookup, MAX_CACHEABLE_BYTES};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Which replacement policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Evict the least recently used (the baseline).
    Lru,
    /// Evict the least frequently used (recency tiebreak).
    Lfu,
    /// Evict the largest document first.
    Size,
    /// GreedyDual-Size with uniform cost.
    GreedyDualSize,
}

impl Policy {
    /// All policies, for sweeps.
    pub fn all() -> [Policy; 4] {
        [Policy::Lru, Policy::Lfu, Policy::Size, Policy::GreedyDualSize]
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Lru => "LRU",
            Policy::Lfu => "LFU",
            Policy::Size => "SIZE",
            Policy::GreedyDualSize => "GD-Size",
        }
    }
}

/// A totally ordered f64 for use as a BTreeMap key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pri(f64);

impl Eq for Pri {}
impl PartialOrd for Pri {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pri {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry {
    meta: DocMeta,
    /// Current key in the priority index.
    pri: (Pri, u64),
    /// Access count (LFU).
    freq: u64,
}

/// A byte-budget web cache under a configurable replacement policy,
/// with the same 250 KB / staleness semantics as [`crate::WebCache`].
pub struct PolicyCache<K> {
    policy: Policy,
    capacity: u64,
    max_object: u64,
    bytes: u64,
    entries: HashMap<K, Entry>,
    /// Min-priority index; the first element is the victim.
    index: BTreeMap<(Pri, u64), K>,
    /// Monotonic sequence for tiebreaks and LRU ordering.
    seq: u64,
    /// GreedyDual-Size inflation value.
    inflation: f64,
}

impl<K: Eq + Hash + Clone> PolicyCache<K> {
    /// A cache of `capacity` bytes under `policy`.
    pub fn new(policy: Policy, capacity: u64) -> Self {
        PolicyCache {
            policy,
            capacity,
            max_object: MAX_CACHEABLE_BYTES,
            bytes: 0,
            entries: HashMap::new(),
            index: BTreeMap::new(),
            seq: 0,
            inflation: 0.0,
        }
    }

    /// Entries cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes cached.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The priority a (re)accessed entry gets under the active policy.
    fn priority(&mut self, freq: u64, size: u64) -> (Pri, u64) {
        let seq = self.next_seq();
        let p = match self.policy {
            Policy::Lru => seq as f64,
            Policy::Lfu => freq as f64,
            // Largest evicted first = smallest priority for big docs.
            Policy::Size => -(size as f64),
            Policy::GreedyDualSize => self.inflation + 1.0 / size.max(1) as f64,
        };
        (Pri(p), seq)
    }

    /// Look up `key` against a requested version (promotes on hit,
    /// purges on stale, exactly like [`crate::WebCache::lookup`]).
    pub fn lookup(&mut self, key: &K, requested: DocMeta) -> Lookup {
        let Some(entry) = self.entries.get(key) else {
            return Lookup::Miss;
        };
        if entry.meta != requested {
            self.remove(key);
            return Lookup::StaleHit;
        }
        let freq = entry.freq + 1;
        let size = entry.meta.size;
        let old = entry.pri;
        let new = self.priority(freq, size);
        let e = self.entries.get_mut(key).expect("checked above");
        e.freq = freq;
        e.pri = new;
        self.index.remove(&old);
        self.index.insert(new, key.clone());
        Lookup::Hit
    }

    /// Does the cache hold any version of `key`?
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Cached metadata without promotion.
    pub fn peek(&self, key: &K) -> Option<DocMeta> {
        self.entries.get(key).map(|e| e.meta)
    }

    /// Store a document, evicting minimum-priority victims as needed.
    /// Returns the evicted keys, or `None` if the document is
    /// uncacheable.
    pub fn store(&mut self, key: K, meta: DocMeta) -> Option<Vec<K>> {
        if meta.size > self.max_object || meta.size > self.capacity {
            return None;
        }
        self.remove(&key);
        let mut evicted = Vec::new();
        while self.bytes + meta.size > self.capacity {
            let (&pri, victim) = self.index.iter().next().expect("bytes>0 implies entries");
            let victim = victim.clone();
            if self.policy == Policy::GreedyDualSize {
                // Inflate L to the evicted H — the GreedyDual aging step.
                self.inflation = pri.0 .0;
            }
            self.remove(&victim);
            evicted.push(victim);
        }
        let pri = self.priority(1, meta.size);
        self.index.insert(pri, key.clone());
        self.entries.insert(key, Entry { meta, pri, freq: 1 });
        self.bytes += meta.size;
        Some(evicted)
    }

    /// Remove `key` outright.
    pub fn remove(&mut self, key: &K) -> bool {
        if let Some(e) = self.entries.remove(key) {
            self.index.remove(&e.pri);
            self.bytes -= e.meta.size;
            true
        } else {
            false
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        assert_eq!(self.entries.len(), self.index.len());
        let bytes: u64 = self.entries.values().map(|e| e.meta.size).sum();
        assert_eq!(bytes, self.bytes);
        assert!(self.bytes <= self.capacity);
        for (pri, key) in &self.index {
            assert_eq!(self.entries[key].pri, *pri);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, vec_of};

    fn meta(size: u64) -> DocMeta {
        DocMeta {
            size,
            last_modified: 0,
        }
    }

    #[test]
    fn lru_policy_matches_lru_cache() {
        // Same op sequence through PolicyCache(LRU) and WebCache must
        // agree on membership.
        let mut a: PolicyCache<u64> = PolicyCache::new(Policy::Lru, 1000);
        let mut b: crate::WebCache<u64> = crate::WebCache::new(1000);
        let ops: Vec<(u64, u64)> = vec![
            (1, 400),
            (2, 400),
            (1, 400), // touch 1
            (3, 400), // evicts 2
            (4, 200), // evicts ... depends
        ];
        for (key, size) in ops {
            let la = a.lookup(&key, meta(size));
            let lb = b.lookup(&key, meta(size));
            assert_eq!(la, lb, "lookup({key})");
            if la == Lookup::Miss {
                let ea = a.store(key, meta(size)).unwrap();
                let eb = b.store(key, meta(size)).unwrap();
                assert_eq!(ea, eb, "evictions for {key}");
            }
            a.check_invariants();
        }
    }

    #[test]
    fn size_policy_evicts_largest() {
        let mut c: PolicyCache<u32> = PolicyCache::new(Policy::Size, 1000);
        c.store(1, meta(500)).unwrap();
        c.store(2, meta(300)).unwrap();
        c.store(3, meta(100)).unwrap();
        let evicted = c.store(4, meta(400)).unwrap();
        assert_eq!(evicted, vec![1], "largest doc goes first");
        c.check_invariants();
    }

    #[test]
    fn lfu_protects_frequent_documents() {
        let mut c: PolicyCache<u32> = PolicyCache::new(Policy::Lfu, 900);
        c.store(1, meta(300)).unwrap();
        c.store(2, meta(300)).unwrap();
        c.store(3, meta(300)).unwrap();
        for _ in 0..5 {
            assert_eq!(c.lookup(&1, meta(300)), Lookup::Hit);
        }
        assert_eq!(c.lookup(&3, meta(300)), Lookup::Hit);
        // 2 has freq 1, must be the victim.
        let evicted = c.store(4, meta(300)).unwrap();
        assert_eq!(evicted, vec![2]);
    }

    #[test]
    fn gds_prefers_evicting_big_cold_documents() {
        let mut c: PolicyCache<u32> = PolicyCache::new(Policy::GreedyDualSize, 1000);
        c.store(1, meta(600)).unwrap(); // H = 1/600
        c.store(2, meta(10)).unwrap(); // H = 1/10
        let evicted = c.store(3, meta(500)).unwrap();
        assert_eq!(evicted, vec![1], "big doc has the lower H");
        c.check_invariants();
    }

    #[test]
    fn gds_inflation_lets_new_docs_beat_stale_ones() {
        let mut c: PolicyCache<u32> = PolicyCache::new(Policy::GreedyDualSize, 150);
        c.store(1, meta(50)).unwrap(); // H = 0.02
        c.store(2, meta(50)).unwrap(); // H = 0.02
        // Evicting 1 (seq tiebreak) sets L = 0.02; doc 3 gets
        // H = 0.02 + 1/60 ≈ 0.037.
        let e = c.store(3, meta(60)).unwrap();
        assert_eq!(e, vec![1]);
        // Now 3 outranks 2 (2 was priced pre-inflation): storing 4
        // evicts 2, not 3.
        let e = c.store(4, meta(50)).unwrap();
        assert_eq!(e, vec![2]);
        c.check_invariants();
    }

    #[test]
    fn staleness_and_limits_behave_like_webcache() {
        let mut c: PolicyCache<u32> = PolicyCache::new(Policy::GreedyDualSize, 1 << 20);
        assert!(c.store(1, meta(MAX_CACHEABLE_BYTES + 1)).is_none());
        c.store(2, meta(100)).unwrap();
        assert_eq!(
            c.lookup(
                &2,
                DocMeta {
                    size: 100,
                    last_modified: 9
                }
            ),
            Lookup::StaleHit
        );
        assert!(!c.contains(&2), "stale copy purged");
    }

    /// Structural invariants hold for every policy under random ops.
    #[test]
    fn prop_invariants_all_policies() {
        check("policy_invariants_all_policies", 256, |rng| {
            let policy = Policy::all()[rng.gen_range(0usize..4)];
            let ops = vec_of(rng, 1..200, |r| {
                (r.gen_range(0u32..20), r.gen_range(50u64..400), r.gen_bool(0.5))
            });
            let mut c: PolicyCache<u32> = PolicyCache::new(policy, 2_000);
            for (key, size, is_store) in ops {
                if is_store {
                    c.store(key, meta(size));
                } else {
                    c.lookup(&key, meta(size));
                }
                c.check_invariants();
            }
        });
    }

    /// Whatever the policy, a just-stored document is present and a
    /// hit immediately afterwards.
    #[test]
    fn prop_store_then_hit() {
        check("policy_store_then_hit", 128, |rng| {
            let policy = Policy::all()[rng.gen_range(0usize..4)];
            let size = rng.gen_range(1u64..1000);
            let mut c: PolicyCache<u32> = PolicyCache::new(policy, 10_000);
            c.store(7, meta(size)).unwrap();
            assert_eq!(c.lookup(&7, meta(size)), Lookup::Hit);
        });
    }
}
