#![warn(missing_docs)]

//! Proxy cache substrate for the summary-cache reproduction.
//!
//! The paper's simulations (Section II) use byte-capacity LRU caches with
//! two policy rules taken from real proxies of the era:
//!
//! * documents larger than 250 KB are not cached;
//! * cache consistency is modelled as perfect — a request that hits a
//!   document whose last-modified time or size has changed counts as a
//!   miss (the cached copy is *stale*).
//!
//! [`LruCache`] is the generic byte-budget LRU; [`WebCache`] layers the
//! paper's web-document policy on top and is what the simulator and the
//! live proxy share.

pub mod lru;
pub mod policy;
pub mod web;

pub use lru::{Evicted, InsertOutcome, LruCache};
pub use policy::{Policy, PolicyCache};
pub use web::{DocMeta, Lookup, WebCache, MAX_CACHEABLE_BYTES};
