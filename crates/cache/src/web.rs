//! The paper's web-document caching policy layered on [`LruCache`].

use crate::lru::{InsertOutcome, LruCache};
use std::hash::Hash;

/// "Documents larger than 250 KB are not cached" (Section II).
pub const MAX_CACHEABLE_BYTES: u64 = 250 * 1024;

/// Cached metadata of a web document: enough to implement the paper's
/// perfect-consistency model (a hit whose size or last-modified time
/// changed is a stale hit, counted as a miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocMeta {
    /// Body size in bytes.
    pub size: u64,
    /// Last-modified timestamp (opaque ticks; 0 = unknown).
    pub last_modified: u64,
}

/// Outcome of a cache lookup against a requested document version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Fresh copy cached.
    Hit,
    /// A copy is cached but its size/last-modified differ from the
    /// requested version — served as a miss, copy invalidated.
    StaleHit,
    /// Not cached.
    Miss,
}

/// A proxy's document cache: byte-budget LRU + the 250 KB rule +
/// staleness checking.
pub struct WebCache<K> {
    lru: LruCache<K, DocMeta>,
    max_object: u64,
}

impl<K: Eq + Hash + Clone> WebCache<K> {
    /// A cache of `capacity` bytes with the paper's 250 KB object limit.
    pub fn new(capacity: u64) -> Self {
        Self::with_max_object(capacity, MAX_CACHEABLE_BYTES)
    }

    /// Override the object-size limit (for sensitivity experiments).
    pub fn with_max_object(capacity: u64, max_object: u64) -> Self {
        WebCache {
            lru: LruCache::new(capacity),
            max_object,
        }
    }

    /// Byte budget.
    pub fn capacity(&self) -> u64 {
        self.lru.capacity()
    }

    /// Bytes stored.
    pub fn bytes(&self) -> u64 {
        self.lru.bytes()
    }

    /// Cached document count.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Look up `key` for a request expecting version `requested`.
    ///
    /// A [`Lookup::Hit`] promotes the entry. A [`Lookup::StaleHit`]
    /// removes the outdated copy (the caller will re-fetch and
    /// [`WebCache::store`] the new version) and reports the key so
    /// summaries can be updated.
    pub fn lookup(&mut self, key: &K, requested: DocMeta) -> Lookup {
        match self.lru.peek(key).copied() {
            None => Lookup::Miss,
            Some(meta) if meta == requested => {
                self.lru.touch(key);
                Lookup::Hit
            }
            Some(_) => {
                self.lru.remove(key);
                Lookup::StaleHit
            }
        }
    }

    /// Does the cache hold *any* version of `key`? (Peer queries don't
    /// know the requester's version expectations; a version mismatch at
    /// the peer is the paper's *remote stale hit*.) Does not promote.
    pub fn contains(&self, key: &K) -> bool {
        self.lru.contains(key)
    }

    /// Cached metadata without promotion.
    pub fn peek(&self, key: &K) -> Option<DocMeta> {
        self.lru.peek(key).copied()
    }

    /// Promote `key` (single-copy sharing's remote-hit treatment).
    pub fn touch(&mut self, key: &K) -> bool {
        self.lru.touch(key)
    }

    /// Store a fetched document. Returns the evicted keys (for summary
    /// maintenance); an uncacheable (too large) document returns `None`.
    pub fn store(&mut self, key: K, meta: DocMeta) -> Option<Vec<K>> {
        if meta.size > self.max_object {
            return None;
        }
        match self.lru.insert(key, meta, meta.size) {
            InsertOutcome::TooLarge => None,
            InsertOutcome::Stored { evicted } | InsertOutcome::Replaced { evicted, .. } => {
                Some(evicted.into_iter().map(|e| e.key).collect())
            }
        }
    }

    /// Remove a document (e.g. after a stale hit).
    pub fn remove(&mut self, key: &K) -> bool {
        self.lru.remove(key).is_some()
    }

    /// Keys from most- to least-recently used — the cache directory a
    /// summary is built from.
    pub fn directory(&self) -> impl Iterator<Item = &K> {
        self.lru.iter_mru().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: u64, lm: u64) -> DocMeta {
        DocMeta {
            size,
            last_modified: lm,
        }
    }

    #[test]
    fn hit_stale_miss_triage() {
        let mut c: WebCache<u64> = WebCache::new(1 << 20);
        assert_eq!(c.lookup(&1, meta(100, 5)), Lookup::Miss);
        c.store(1, meta(100, 5));
        assert_eq!(c.lookup(&1, meta(100, 5)), Lookup::Hit);
        // Document modified on the server: same URL, new last-modified.
        assert_eq!(c.lookup(&1, meta(100, 6)), Lookup::StaleHit);
        // The stale copy was purged; a retry is a clean miss.
        assert_eq!(c.lookup(&1, meta(100, 6)), Lookup::Miss);
    }

    #[test]
    fn size_change_is_stale() {
        let mut c: WebCache<u64> = WebCache::new(1 << 20);
        c.store(7, meta(100, 1));
        assert_eq!(c.lookup(&7, meta(120, 1)), Lookup::StaleHit);
    }

    #[test]
    fn oversized_documents_bypass_cache() {
        let mut c: WebCache<u64> = WebCache::new(1 << 30);
        assert_eq!(c.store(1, meta(MAX_CACHEABLE_BYTES + 1, 0)), None);
        assert!(!c.contains(&1));
        assert_eq!(c.store(2, meta(MAX_CACHEABLE_BYTES, 0)), Some(vec![]));
        assert!(c.contains(&2));
    }

    #[test]
    fn store_reports_evictions() {
        let mut c: WebCache<u64> = WebCache::new(250);
        c.store(1, meta(100, 0));
        c.store(2, meta(100, 0));
        let evicted = c.store(3, meta(100, 0)).unwrap();
        assert_eq!(evicted, vec![1]);
    }

    #[test]
    fn hit_promotes_against_eviction() {
        let mut c: WebCache<u64> = WebCache::new(250);
        c.store(1, meta(100, 0));
        c.store(2, meta(100, 0));
        assert_eq!(c.lookup(&1, meta(100, 0)), Lookup::Hit);
        let evicted = c.store(3, meta(100, 0)).unwrap();
        assert_eq!(evicted, vec![2], "hit on 1 made 2 the LRU victim");
    }

    #[test]
    fn directory_lists_all_keys() {
        let mut c: WebCache<u64> = WebCache::new(1 << 20);
        for i in 0..10 {
            c.store(i, meta(10, 0));
        }
        let mut dir: Vec<u64> = c.directory().copied().collect();
        dir.sort_unstable();
        assert_eq!(dir, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn contains_ignores_version() {
        let mut c: WebCache<u64> = WebCache::new(1 << 20);
        c.store(1, meta(100, 1));
        // A peer probing for any version sees it, even though the
        // requester's expected version differs (remote stale hit).
        assert!(c.contains(&1));
    }
}
