//! A byte-budget LRU cache with O(1) operations.
//!
//! Entries live in a slab of doubly-linked nodes; a `HashMap` indexes keys
//! to slab slots. Eviction pops from the tail (least recently used) until
//! the byte budget is met, returning the victims so callers can keep
//! derived structures (Bloom summaries, directories) in sync.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    size: u64,
    prev: usize,
    next: usize,
}

/// What happened to an [`LruCache::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome<K, V> {
    /// Entry stored; zero or more victims were evicted to make room.
    Stored {
        /// Victims evicted to make room.
        evicted: Vec<Evicted<K, V>>,
    },
    /// Entry replaced an existing one under the same key (old value
    /// returned); victims may still have been evicted if it grew.
    Replaced {
        /// The value previously stored under this key.
        old: V,
        /// Victims evicted because the entry grew.
        evicted: Vec<Evicted<K, V>>,
    },
    /// Entry was larger than the whole cache and was not stored.
    TooLarge,
}

/// An evicted entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<K, V> {
    /// The evicted key.
    pub key: K,
    /// Its stored value.
    pub value: V,
    /// Its recorded size in bytes.
    pub size: u64,
}

/// Byte-capacity LRU cache.
///
/// ```
/// let mut c = sc_cache::LruCache::new(100);
/// c.insert("a", (), 60);
/// c.insert("b", (), 60); // evicts "a"
/// assert!(c.get(&"a").is_none());
/// assert!(c.get(&"b").is_some());
/// ```
pub struct LruCache<K, V> {
    capacity: u64,
    bytes: u64,
    map: HashMap<K, usize>,
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            bytes: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Total byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.slab[idx].as_ref().unwrap();
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].as_mut().unwrap().next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].as_mut().unwrap().prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let n = self.slab[idx].as_mut().unwrap();
            n.prev = NIL;
            n.next = self.head;
        }
        if self.head != NIL {
            self.slab[self.head].as_mut().unwrap().prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = Some(node);
            idx
        } else {
            self.slab.push(Some(node));
            self.slab.len() - 1
        }
    }

    fn release(&mut self, idx: usize) -> Node<K, V> {
        let node = self.slab[idx].take().unwrap();
        self.free.push(idx);
        node
    }

    /// Look up `key`, promoting it to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.slab[idx].as_ref().unwrap().value)
    }

    /// Look up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        Some(&self.slab[idx].as_ref().unwrap().value)
    }

    /// Stored size of `key`'s entry, without touching recency.
    pub fn size_of(&self, key: &K) -> Option<u64> {
        let idx = *self.map.get(key)?;
        Some(self.slab[idx].as_ref().unwrap().size)
    }

    /// True if `key` is cached; does not touch recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Promote `key` to most-recently-used without reading it. Returns
    /// whether the key was present. (Single-copy sharing marks a remotely
    /// hit document most-recently-accessed this way, Section III.)
    pub fn touch(&mut self, key: &K) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Insert `key` with `size` bytes of `value`, evicting from the LRU
    /// tail as needed.
    pub fn insert(&mut self, key: K, value: V, size: u64) -> InsertOutcome<K, V> {
        if size > self.capacity {
            return InsertOutcome::TooLarge;
        }
        let old = self.remove(&key);
        let mut evicted = Vec::new();
        while self.bytes + size > self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL, "budget check above guarantees progress");
            self.unlink(tail);
            let node = self.release(tail);
            self.map.remove(&node.key);
            self.bytes -= node.size;
            evicted.push(Evicted {
                key: node.key,
                value: node.value,
                size: node.size,
            });
        }
        let idx = self.alloc(Node {
            key: key.clone(),
            value,
            size,
            prev: NIL,
            next: NIL,
        });
        self.push_front(idx);
        self.map.insert(key, idx);
        self.bytes += size;
        match old {
            Some(old) => InsertOutcome::Replaced { old, evicted },
            None => InsertOutcome::Stored { evicted },
        }
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let node = self.release(idx);
        self.bytes -= node.size;
        Some(node.value)
    }

    /// Keys from most- to least-recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let n = self.slab[cur].as_ref().unwrap();
            cur = n.next;
            Some((&n.key, &n.value))
        })
    }

    /// The least-recently-used key, if any.
    pub fn lru_key(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slab[self.tail].as_ref().unwrap().key)
        }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let mut seen = 0usize;
        let mut bytes = 0u64;
        let mut cur = self.head;
        let mut prev = NIL;
        while cur != NIL {
            let n = self.slab[cur].as_ref().unwrap();
            assert_eq!(n.prev, prev);
            assert_eq!(self.map[&n.key], cur);
            seen += 1;
            bytes += n.size;
            prev = cur;
            cur = n.next;
        }
        assert_eq!(prev, self.tail);
        assert_eq!(seen, self.map.len());
        assert_eq!(bytes, self.bytes);
        assert!(self.bytes <= self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, vec_of};

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        c.insert(1, 'a', 10);
        c.insert(2, 'b', 10);
        c.insert(3, 'c', 10);
        c.get(&1); // 1 is now MRU, 2 is LRU
        match c.insert(4, 'd', 10) {
            InsertOutcome::Stored { evicted } => {
                assert_eq!(evicted.len(), 1);
                assert_eq!(evicted[0].key, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        c.check_invariants();
    }

    #[test]
    fn oversized_rejected() {
        let mut c: LruCache<u32, ()> = LruCache::new(10);
        assert_eq!(c.insert(1, (), 11), InsertOutcome::TooLarge);
        assert!(c.is_empty());
    }

    #[test]
    fn replace_same_key_adjusts_bytes() {
        let mut c = LruCache::new(100);
        c.insert("k", 1, 40);
        match c.insert("k", 2, 70) {
            InsertOutcome::Replaced { old, evicted } => {
                assert_eq!(old, 1);
                assert!(evicted.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.bytes(), 70);
        assert_eq!(c.len(), 1);
        c.check_invariants();
    }

    #[test]
    fn replace_grow_can_evict_others() {
        let mut c = LruCache::new(100);
        c.insert(1, (), 50);
        c.insert(2, (), 40);
        // Growing key 2 to 90 must evict key 1.
        match c.insert(2, (), 90) {
            InsertOutcome::Replaced { evicted, .. } => {
                assert_eq!(evicted.len(), 1);
                assert_eq!(evicted[0].key, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn multi_eviction_for_one_big_insert() {
        let mut c = LruCache::new(100);
        for i in 0..10 {
            c.insert(i, (), 10);
        }
        match c.insert(99, (), 95) {
            InsertOutcome::Stored { evicted } => {
                assert_eq!(evicted.len(), 10, "evicts everything but itself... ");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.len(), 1);
        c.check_invariants();
    }

    #[test]
    fn touch_promotes_without_reading() {
        let mut c = LruCache::new(20);
        c.insert(1, (), 10);
        c.insert(2, (), 10);
        assert!(c.touch(&1));
        assert!(!c.touch(&999));
        let evicted = match c.insert(3, (), 10) {
            InsertOutcome::Stored { evicted } => evicted,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(evicted[0].key, 2, "touched key 1 survived");
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = LruCache::new(20);
        c.insert(1, (), 10);
        c.insert(2, (), 10);
        assert_eq!(c.peek(&1), Some(&()));
        let evicted = match c.insert(3, (), 10) {
            InsertOutcome::Stored { evicted } => evicted,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(evicted[0].key, 1, "peek left key 1 at the tail");
    }

    #[test]
    fn iter_mru_order() {
        let mut c = LruCache::new(100);
        for i in 0..5 {
            c.insert(i, (), 10);
        }
        c.get(&0);
        let keys: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![0, 4, 3, 2, 1]);
        assert_eq!(c.lru_key(), Some(&1));
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(100);
        for i in 0..10 {
            c.insert(i, i * 2, 10);
        }
        for i in (0..10).step_by(2) {
            assert_eq!(c.remove(&i), Some(i * 2));
        }
        for i in 10..15 {
            c.insert(i, i * 2, 10);
        }
        assert_eq!(c.len(), 10);
        c.check_invariants();
    }

    /// Random op sequences keep every structural invariant and agree
    /// with a naive model on membership.
    #[test]
    fn prop_matches_naive_model() {
        check("lru_matches_naive_model", 256, |rng| {
            let ops = vec_of(rng, 1..300, |r| {
                (r.gen_range(0u8..4), r.gen_range(0u32..30), r.gen_range(1u64..40))
            });
            let capacity = 200u64;
            let mut c: LruCache<u32, u32> = LruCache::new(capacity);
            // Naive model: Vec in MRU order.
            let mut model: Vec<(u32, u64)> = Vec::new();
            for (op, key, size) in ops {
                match op {
                    0 => { // insert
                        if size <= capacity {
                            model.retain(|&(k, _)| k != key);
                            let mut used: u64 = model.iter().map(|&(_, s)| s).sum();
                            while used + size > capacity {
                                let (_, s) = model.pop().unwrap();
                                used -= s;
                            }
                            model.insert(0, (key, size));
                        }
                        c.insert(key, key, size);
                    }
                    1 => { // get
                        let hit = c.get(&key).is_some();
                        let model_hit = model.iter().any(|&(k, _)| k == key);
                        assert_eq!(hit, model_hit);
                        if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                            let e = model.remove(pos);
                            model.insert(0, e);
                        }
                    }
                    2 => { // remove
                        let had = c.remove(&key).is_some();
                        let model_had = model.iter().any(|&(k, _)| k == key);
                        assert_eq!(had, model_had);
                        model.retain(|&(k, _)| k != key);
                    }
                    _ => { // touch
                        c.touch(&key);
                        if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                            let e = model.remove(pos);
                            model.insert(0, e);
                        }
                    }
                }
                c.check_invariants();
                assert_eq!(c.len(), model.len());
                let mru: Vec<u32> = c.iter_mru().map(|(k, _)| *k).collect();
                let model_mru: Vec<u32> = model.iter().map(|&(k, _)| k).collect();
                assert_eq!(mru, model_mru);
            }
        });
    }
}
