#![warn(missing_docs)]

//! Trace-driven simulator for the paper's cache-sharing experiments.
//!
//! Two simulation families:
//!
//! * [`schemes`] — the Section III comparison of cooperation schemes
//!   (no sharing / ICP-style simple sharing / single-copy sharing /
//!   global cache), producing Fig. 1;
//! * [`summary_sim`] — the Section V summary-cache simulation with a
//!   pluggable representation ([`summary_cache_core::SummaryKind`]) and
//!   update policy, producing Fig. 2 and Figs. 5–8 plus the Table III
//!   memory numbers; the same run also evaluates the ICP message model
//!   for the Fig. 7/8 baselines.
//!
//! All simulators honour the paper's Section II methodology: clients are
//! partitioned onto proxies by `clientid mod groups`, caches run LRU
//! with the 250 KB object limit, consistency is perfect (a version
//! change is a stale hit, counted as a miss), and the default cache size
//! is 10 % of the trace's infinite cache size, split evenly across
//! proxies.

pub mod hierarchy;
pub mod keys;
pub mod metrics;
pub mod replacement;
pub mod schemes;
pub mod summary_sim;

pub use hierarchy::{simulate_hierarchy, HierarchyConfig, HierarchyResult};
pub use metrics::{Metrics, Rates};
pub use schemes::{simulate_scheme, SchemeKind};
pub use summary_sim::{simulate_summary_cache, SummaryCacheConfig, SummarySimResult};

/// Per-proxy cache capacity when a `fraction` of a trace's infinite
/// cache size is split across `groups` proxies (the Section II setup).
pub fn per_proxy_capacity(infinite_cache_bytes: u64, fraction: f64, groups: u32) -> u64 {
    assert!(fraction > 0.0 && groups > 0);
    (((infinite_cache_bytes as f64) * fraction) as u64 / groups as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_split() {
        assert_eq!(per_proxy_capacity(1000, 0.1, 4), 25);
        assert_eq!(per_proxy_capacity(10, 0.001, 4), 1, "floored at one byte");
    }
}
