//! Compact summary keys for simulation.
//!
//! The live proxy summarizes URL strings; the simulator uses the 8-byte
//! little-endian encoding of the document/server ids instead — the same
//! information through MD5, at a third of the hashing cost. Both sides
//! only require keys to be stable and unique.

use sc_trace::UrlId;

/// The summary key for a document id.
pub fn url_key(url: UrlId) -> [u8; 8] {
    url.to_le_bytes()
}

/// The summary key for a server id.
pub fn server_key(server: u32) -> [u8; 8] {
    (server as u64).to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_injective() {
        assert_ne!(url_key(1), url_key(2));
        assert_ne!(server_key(1), server_key(2));
        assert_eq!(url_key(7), url_key(7));
    }
}
