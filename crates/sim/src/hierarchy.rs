//! Two-level cache hierarchies (the paper's Section VIII note that
//! "summary cache enhanced ICP can be used between parent and child
//! proxies" — a scenario the paper names but does not simulate).
//!
//! Topology: the trace's proxy groups are *child* proxies behind one
//! *parent* (the Harvest/Squid hierarchy shape, and exactly Questnet's
//! real deployment). A child miss consults its siblings — optionally
//! through summary-cache probes — and then falls through to the parent,
//! which caches what it fetches. The quantity of interest is how much
//! sibling cache sharing offloads the parent and the origin.

use crate::keys::{server_key, url_key};
use crate::summary_sim::SummaryCacheConfig;
use sc_cache::{DocMeta, Lookup, WebCache};
use sc_trace::{group_of_client, Trace};
use std::collections::HashMap;
use summary_cache_core::ProxySummary;

/// Hierarchy simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Sibling cooperation: `None` = children work alone (classic
    /// hierarchy); `Some(cfg)` = children share via summary cache
    /// before asking the parent.
    pub sibling_sharing: Option<SummaryCacheConfig>,
    /// Combined capacity of the child tier, bytes (split evenly).
    pub child_tier_bytes: u64,
    /// Parent cache capacity, bytes.
    pub parent_bytes: u64,
}

/// What a hierarchy run produces.
#[derive(Debug, Clone)]
pub struct HierarchyResult {
    /// User requests processed.
    pub requests: u64,
    /// Served at the requesting child.
    pub child_hits: u64,
    /// Served by a sibling (only with sharing enabled).
    pub sibling_hits: u64,
    /// Served by the parent cache.
    pub parent_hits: u64,
    /// Fetched from the origin (through the parent).
    pub origin_fetches: u64,
    /// Requests that reached the parent at all — its load.
    pub parent_requests: u64,
    /// Sibling query messages (unicast; 0 without sharing).
    pub sibling_queries: u64,
    /// Summary update messages among siblings.
    pub update_messages: u64,
}

impl HierarchyResult {
    /// Total in-hierarchy hit ratio (anything short of the origin).
    pub fn hierarchy_hit_ratio(&self) -> f64 {
        let n = self.requests.max(1) as f64;
        (self.child_hits + self.sibling_hits + self.parent_hits) as f64 / n
    }

    /// Fraction of requests the parent had to handle.
    pub fn parent_load(&self) -> f64 {
        self.parent_requests as f64 / self.requests.max(1) as f64
    }

    /// Hit ratio *of the parent cache itself*, over the requests that
    /// reached it. This is where the filter effect shows: sibling
    /// sharing strips the popular tail before the parent sees it, so
    /// the parent serves a flattened, hard-to-cache stream.
    pub fn parent_hit_ratio(&self) -> f64 {
        self.parent_hits as f64 / self.parent_requests.max(1) as f64
    }
}

/// Run `trace` through the hierarchy under each sibling-sharing scheme
/// — none, Bloom (the paper's recommended lf 8 / 4 hashes), exact
/// directory, and server name — and hand back the labeled results.
/// This is the filter-effect sweep: compare [`HierarchyResult::parent_hit_ratio`]
/// across rows to see how much each sharing scheme starves the parent.
pub fn filter_effect(
    trace: &Trace,
    child_tier_bytes: u64,
    parent_bytes: u64,
) -> Vec<(String, HierarchyResult)> {
    use summary_cache_core::{SummaryKind, UpdatePolicy};
    let schemes: [(&str, Option<SummaryKind>); 4] = [
        ("no-sharing", None),
        (
            "bloom",
            Some(SummaryKind::Bloom {
                load_factor: 8,
                hashes: 4,
            }),
        ),
        ("exact-directory", Some(SummaryKind::ExactDirectory)),
        ("server-name", Some(SummaryKind::ServerName)),
    ];
    schemes
        .into_iter()
        .map(|(label, kind)| {
            let cfg = HierarchyConfig {
                sibling_sharing: kind.map(|kind| SummaryCacheConfig {
                    kind,
                    policy: UpdatePolicy::EveryRequests(50),
                    multicast_updates: false,
                }),
                child_tier_bytes,
                parent_bytes,
            };
            (label.to_string(), simulate_hierarchy(trace, &cfg))
        })
        .collect()
}

/// Run the hierarchy over a trace.
pub fn simulate_hierarchy(trace: &Trace, cfg: &HierarchyConfig) -> HierarchyResult {
    let groups = trace.groups as usize;
    assert!(groups >= 1);
    let per_child = (cfg.child_tier_bytes / groups as u64).max(1);

    let mut children: Vec<WebCache<u64>> = (0..groups).map(|_| WebCache::new(per_child)).collect();
    let mut summaries: Vec<ProxySummary> = match &cfg.sibling_sharing {
        Some(sc) => (0..groups)
            .map(|_| {
                ProxySummary::with_expected_docs(
                    sc.kind,
                    (per_child / summary_cache_core::AVG_DOC_BYTES).max(16),
                )
            })
            .collect(),
        None => Vec::new(),
    };
    let mut requests_since: Vec<u64> = vec![0; groups];
    let mut parent: WebCache<u64> = WebCache::new(cfg.parent_bytes.max(1));
    let mut server_of: HashMap<u64, u32> = HashMap::new();

    let mut r_out = HierarchyResult {
        requests: 0,
        child_hits: 0,
        sibling_hits: 0,
        parent_hits: 0,
        origin_fetches: 0,
        parent_requests: 0,
        sibling_queries: 0,
        update_messages: 0,
    };

    for req in &trace.requests {
        r_out.requests += 1;
        server_of.entry(req.url).or_insert(req.server);
        let home = group_of_client(req.client, trace.groups) as usize;
        let meta = DocMeta {
            size: req.size,
            last_modified: req.last_modified,
        };
        let ukey = url_key(req.url);
        let skey = server_key(req.server);

        let mut local_stale = false;
        match children[home].lookup(&req.url, meta) {
            Lookup::Hit => {
                r_out.child_hits += 1;
                continue;
            }
            Lookup::StaleHit => local_stale = true,
            Lookup::Miss => {}
        }
        if local_stale && !summaries.is_empty() {
            summaries[home].remove(&ukey, &skey);
        }

        // Sibling tier (summary-cache style), if enabled.
        let mut served_by_sibling = false;
        if let Some(sc) = &cfg.sibling_sharing {
            let candidates: Vec<usize> = summary_cache_core::filter_candidates(
                (0..groups)
                    .filter(|&g| g != home)
                    .map(|g| (g, summaries[g].published())),
                &ukey,
                &skey,
            );
            r_out.sibling_queries += candidates.len() as u64;
            for g in candidates {
                if children[g].peek(&req.url) == Some(meta) {
                    served_by_sibling = true;
                    break;
                }
            }
            // Publish bookkeeping for the home child.
            requests_since[home] += 1;
            if sc.policy.should_publish(
                summaries[home].fresh_docs(),
                summaries[home].docs(),
                requests_since[home],
                0,
            ) {
                summaries[home].publish();
                r_out.update_messages += (groups - 1) as u64;
                requests_since[home] = 0;
            }
        }

        if served_by_sibling {
            r_out.sibling_hits += 1;
        } else {
            // Fall through to the parent.
            r_out.parent_requests += 1;
            match parent.lookup(&req.url, meta) {
                Lookup::Hit => r_out.parent_hits += 1,
                Lookup::StaleHit | Lookup::Miss => {
                    r_out.origin_fetches += 1;
                    parent.store(req.url, meta);
                }
            }
        }

        // Either way, the child caches the document.
        if let Some(evicted) = children[home].store(req.url, meta) {
            if !summaries.is_empty() {
                summaries[home].insert(&ukey, &skey);
                for victim in evicted {
                    let vs = server_key(server_of[&victim]);
                    summaries[home].remove(&url_key(victim), &vs);
                }
            }
        }
    }
    r_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_trace::{profile, TraceStats};
    use summary_cache_core::{SummaryKind, UpdatePolicy};

    fn run(sharing: bool) -> HierarchyResult {
        let trace = profile("Questnet").unwrap().generate_scaled(20);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let cfg = HierarchyConfig {
            sibling_sharing: sharing.then_some(SummaryCacheConfig {
                kind: SummaryKind::Bloom {
                    load_factor: 16,
                    hashes: 4,
                },
                policy: UpdatePolicy::EveryRequests(50),
                multicast_updates: false,
            }),
            child_tier_bytes: infinite / 10,
            parent_bytes: infinite / 10,
        };
        simulate_hierarchy(&trace, &cfg)
    }

    #[test]
    fn accounting_adds_up() {
        for sharing in [false, true] {
            let r = run(sharing);
            assert_eq!(
                r.child_hits + r.sibling_hits + r.parent_hits + r.origin_fetches,
                r.requests,
                "sharing={sharing}"
            );
            assert_eq!(
                r.parent_requests,
                r.parent_hits + r.origin_fetches,
                "parent sees exactly what siblings could not serve"
            );
        }
    }

    #[test]
    fn sibling_sharing_offloads_the_parent() {
        let alone = run(false);
        let shared = run(true);
        assert_eq!(alone.sibling_hits, 0);
        assert!(shared.sibling_hits > 0, "siblings serve each other");
        assert!(
            shared.parent_load() < alone.parent_load(),
            "parent load must drop: {} vs {}",
            shared.parent_load(),
            alone.parent_load()
        );
        // Total hierarchy hit ratio should not get worse.
        assert!(shared.hierarchy_hit_ratio() >= alone.hierarchy_hit_ratio() - 0.02);
    }

    #[test]
    fn no_sharing_means_no_sibling_traffic() {
        let r = run(false);
        assert_eq!(r.sibling_queries, 0);
        assert_eq!(r.update_messages, 0);
    }

    fn cfg_plain(child_tier_bytes: u64, parent_bytes: u64) -> HierarchyConfig {
        HierarchyConfig {
            sibling_sharing: None,
            child_tier_bytes,
            parent_bytes,
        }
    }

    fn one_doc_trace(clients: u32, repeats_per_client: u32) -> sc_trace::Trace {
        let mut requests = Vec::new();
        for rep in 0..repeats_per_client {
            for client in 0..clients {
                requests.push(sc_trace::Request {
                    time_ms: (rep * clients + client) as u64,
                    client,
                    url: 7,
                    server: 1,
                    size: 2048,
                    last_modified: 0,
                });
            }
        }
        sc_trace::Trace {
            name: "one-doc".into(),
            groups: clients,
            requests,
        }
    }

    #[test]
    fn empty_trace_yields_zero_ratios_not_nan() {
        let trace = sc_trace::Trace {
            name: "empty".into(),
            groups: 3,
            requests: Vec::new(),
        };
        let r = simulate_hierarchy(&trace, &cfg_plain(1 << 20, 1 << 20));
        assert_eq!(r.requests, 0);
        assert_eq!(r.hierarchy_hit_ratio(), 0.0);
        assert_eq!(r.parent_load(), 0.0);
        assert_eq!(r.parent_hit_ratio(), 0.0);
    }

    /// Children too small to hold even one document: every request
    /// falls through, the first one fetches from the origin, and the
    /// parent serves everything after that.
    #[test]
    fn parent_serves_everything_when_children_cannot_cache() {
        let trace = one_doc_trace(4, 3);
        // per-child = 0/4 -> clamped to 1 byte, doc is 2 KiB: unstorable.
        let r = simulate_hierarchy(&trace, &cfg_plain(0, 1 << 20));
        assert_eq!(r.child_hits, 0, "1-byte children cannot hit");
        assert_eq!(r.sibling_hits, 0);
        assert_eq!(r.parent_load(), 1.0, "every request reaches the parent");
        assert_eq!(r.origin_fetches, 1, "only the cold fetch leaves the hierarchy");
        assert_eq!(r.parent_hits, r.requests - 1);
        assert_eq!(r.parent_hit_ratio(), (r.requests - 1) as f64 / r.requests as f64);
    }

    /// Zero capacity at *both* tiers must degrade to pure origin
    /// fetching without panicking or corrupting the accounting.
    #[test]
    fn zero_capacity_everywhere_degrades_to_origin_only() {
        let trace = one_doc_trace(2, 5);
        let r = simulate_hierarchy(&trace, &cfg_plain(0, 0));
        assert_eq!(r.requests, 10);
        assert_eq!(r.origin_fetches, r.requests, "nothing can be cached anywhere");
        assert_eq!(r.hierarchy_hit_ratio(), 0.0);
        assert_eq!(r.parent_load(), 1.0);
        assert_eq!(
            r.child_hits + r.sibling_hits + r.parent_hits + r.origin_fetches,
            r.requests
        );
    }

    /// The filter-effect sweep over the canned two-level scenario:
    /// every sharing scheme keeps the accounting identity, sharing rows
    /// actually query siblings, and sibling sharing starves the parent
    /// (lower parent load than the no-sharing baseline) — the effect
    /// the selection-policy literature warns hierarchy evaluations
    /// about.
    #[test]
    fn filter_effect_rows_are_consistent_and_starve_the_parent() {
        let scenario = sc_trace::scenario::two_level_hierarchy(4, 0x2113);
        let trace = scenario.to_trace();
        let stats = TraceStats::compute(&trace).infinite_cache_bytes;
        let rows = filter_effect(&trace, stats / 4, stats / 4);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, "no-sharing");
        let baseline = &rows[0].1;
        assert_eq!(baseline.sibling_queries, 0);
        for (label, r) in &rows {
            assert_eq!(
                r.child_hits + r.sibling_hits + r.parent_hits + r.origin_fetches,
                r.requests,
                "{label}: accounting must add up"
            );
            assert_eq!(r.requests, trace.requests.len() as u64, "{label}");
        }
        for (label, r) in &rows[1..] {
            assert!(r.sibling_queries > 0, "{label}: sharing must probe siblings");
            assert!(r.sibling_hits > 0, "{label}: siblings must serve something");
            assert!(
                r.parent_load() < baseline.parent_load(),
                "{label}: sharing must offload the parent ({} vs {})",
                r.parent_load(),
                baseline.parent_load()
            );
        }
    }
}
