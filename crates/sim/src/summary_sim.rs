//! The Section V summary-cache simulation (Figs. 2, 5–8, Table III).
//!
//! Every proxy group runs a [`WebCache`] plus a [`ProxySummary`] of its
//! directory. A local miss probes the *published* view of every peer's
//! summary; candidates get unicast queries; errors (false hits, false
//! misses, remote stale hits) and traffic (paper's Section V-D size
//! model) are accounted per request. The same pass also counts what ICP
//! would have sent — a query to every neighbour on every local miss —
//! so figures can show both series from a single run.

use crate::keys::{server_key, url_key};
use crate::metrics::Metrics;
use sc_cache::{DocMeta, Lookup, WebCache};
use sc_trace::{group_of_client, Trace};
use std::collections::HashMap;
use summary_cache_core::{
    filter_candidates_key, wire_cost, ProxySummary, SummaryKind, UpdatePolicy, UrlKey,
};

/// Configuration of one summary-cache simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SummaryCacheConfig {
    /// Directory representation.
    pub kind: SummaryKind,
    /// When to publish updates.
    pub policy: UpdatePolicy,
    /// Deliver updates via unreliable multicast (Section V-F: "update
    /// messages can be transferred via a nonreliable multicast scheme"):
    /// one message per publish instead of one per peer. Byte accounting
    /// charges the payload once.
    pub multicast_updates: bool,
}

impl SummaryCacheConfig {
    /// The paper's recommended configuration (Section V-E): Bloom at
    /// load factor 8, four hashes, 1 % threshold.
    pub fn recommended() -> Self {
        SummaryCacheConfig {
            kind: SummaryKind::recommended(),
            policy: UpdatePolicy::recommended(),
            multicast_updates: false,
        }
    }
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct SummarySimResult {
    /// Summary-cache protocol counters.
    pub metrics: Metrics,
    /// What plain ICP would have sent on this workload: one query per
    /// neighbour per local miss.
    pub icp_queries: u64,
    /// Bytes of those queries (70 B each, Section V-D model).
    pub icp_query_bytes: u64,
    /// Per-proxy cache capacity used.
    pub per_proxy_cache_bytes: u64,
    /// Mean over proxies of the memory devoted to *peers'* summaries at
    /// end of run.
    pub avg_peer_summary_bytes: f64,
    /// Mean over proxies of the owner-side summary memory (counters for
    /// Bloom, the structure itself otherwise).
    pub avg_own_summary_bytes: f64,
    /// Table III metric: peer-summary memory as a fraction of the proxy
    /// cache size.
    pub summary_memory_fraction_of_cache: f64,
}

struct ProxyState {
    cache: WebCache<u64>,
    summary: ProxySummary,
    requests_since_publish: u64,
    last_publish_ms: u64,
}

fn meta(r: &sc_trace::Request) -> DocMeta {
    DocMeta {
        size: r.size,
        last_modified: r.last_modified,
    }
}

/// Run the summary-cache simulation over `trace` with
/// `total_cache_bytes` of combined cache split evenly across groups.
pub fn simulate_summary_cache(
    trace: &Trace,
    config: &SummaryCacheConfig,
    total_cache_bytes: u64,
) -> SummarySimResult {
    let groups = trace.groups as usize;
    assert!(groups >= 2, "cache sharing needs at least two proxies");
    let per_proxy = (total_cache_bytes / groups as u64).max(1);

    // Size summaries by the workload's actual mean cacheable document
    // size, so "load factor" keeps its Section V-D meaning of bits per
    // cached document. (The paper divides by a flat 8 KB because its
    // traces averaged that; our synthetic mix differs.)
    let expected_docs = expected_docs_for(trace, per_proxy);

    let mut proxies: Vec<ProxyState> = (0..groups)
        .map(|_| ProxyState {
            cache: WebCache::new(per_proxy),
            summary: ProxySummary::with_expected_docs(config.kind, expected_docs),
            requests_since_publish: 0,
            last_publish_ms: 0,
        })
        .collect();
    // Server component of each document, learned from the trace, so
    // evictions can maintain server-name summaries.
    let mut server_of: HashMap<u64, u32> = HashMap::new();

    let mut m = Metrics::default();
    let mut icp_queries = 0u64;

    // Bulk trace ingest: each request needs a URL key and a server key,
    // so a pair of consecutive requests fills all four lanes of one
    // interleaved MD5 pass ([`UrlKey::new_batch`]). The keys are pure
    // functions of the trace record, so deriving them a pair ahead
    // changes nothing downstream.
    let mut pairs = trace.requests.chunks_exact(2);
    for pair in pairs.by_ref() {
        let (a, b) = (&pair[0], &pair[1]);
        let (ua, sa) = (url_key(a.url), server_key(a.server));
        let (ub, sb) = (url_key(b.url), server_key(b.server));
        let [ukey_a, skey_a, ukey_b, skey_b] = UrlKey::new_batch([&ua, &sa, &ub, &sb]);
        for (r, ukey, skey) in [(a, ukey_a, skey_a), (b, ukey_b, skey_b)] {
            step_request(
                r,
                &ukey,
                &skey,
                &mut proxies,
                &mut server_of,
                &mut m,
                &mut icp_queries,
                config,
                trace,
            );
        }
    }
    for r in pairs.remainder() {
        // Odd trailing request: scalar keys, same hash-once pipeline.
        let ukey = UrlKey::new(&url_key(r.url));
        let skey = UrlKey::new(&server_key(r.server));
        step_request(
            r,
            &ukey,
            &skey,
            &mut proxies,
            &mut server_of,
            &mut m,
            &mut icp_queries,
            config,
            trace,
        );
    }

    let peer_bytes: Vec<u64> = {
        // Each proxy holds every *other* proxy's published snapshot.
        let snapshot_sizes: Vec<u64> = proxies
            .iter()
            .map(|p| p.summary.peer_memory_bytes() as u64)
            .collect();
        let total: u64 = snapshot_sizes.iter().sum();
        snapshot_sizes.iter().map(|&own| total - own).collect()
    };
    let avg_peer = peer_bytes.iter().sum::<u64>() as f64 / groups as f64;
    let avg_own = proxies
        .iter()
        .map(|p| p.summary.owner_memory_bytes() as u64)
        .sum::<u64>() as f64
        / groups as f64;

    SummarySimResult {
        metrics: m,
        icp_queries,
        icp_query_bytes: icp_queries * wire_cost::QUERY_BYTES as u64,
        per_proxy_cache_bytes: per_proxy,
        avg_peer_summary_bytes: avg_peer,
        avg_own_summary_bytes: avg_own,
        summary_memory_fraction_of_cache: avg_peer / per_proxy as f64,
    }
}

/// Expected cached-document count for a cache of `cache_bytes`, from the
/// trace's mean cacheable (≤ 250 KB) document size.
fn expected_docs_for(trace: &Trace, cache_bytes: u64) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0u64;
    let mut count = 0u64;
    for r in &trace.requests {
        if r.size <= sc_cache::MAX_CACHEABLE_BYTES && seen.insert(r.url) {
            total += r.size;
            count += 1;
        }
    }
    if count == 0 {
        return 1;
    }
    let mean = (total / count).max(1);
    (cache_bytes / mean).max(1)
}

/// One trace request through the protocol: local lookup, peer-summary
/// probe, query/error accounting, store, and the post-request publish
/// check. The request's two keys arrive pre-digested (hash-once: every
/// peer probe, the stale purge, and the store reuse their indices).
#[allow(clippy::too_many_arguments)]
fn step_request(
    r: &sc_trace::Request,
    ukey: &UrlKey,
    skey: &UrlKey,
    proxies: &mut [ProxyState],
    server_of: &mut HashMap<u64, u32>,
    m: &mut Metrics,
    icp_queries: &mut u64,
    config: &SummaryCacheConfig,
    trace: &Trace,
) {
    let groups = trace.groups as usize;
    m.requests += 1;
    m.requested_bytes += r.size;
    server_of.entry(r.url).or_insert(r.server);
    let home = group_of_client(r.client, trace.groups) as usize;

    let mut local_stale = false;
    match proxies[home].cache.lookup(&r.url, meta(r)) {
        Lookup::Hit => {
            m.local_hits += 1;
            m.hit_bytes += r.size;
            after_request(&mut proxies[home], m, r.time_ms, config, groups);
            return;
        }
        Lookup::StaleHit => {
            m.local_stale_hits += 1;
            local_stale = true;
        }
        Lookup::Miss => {}
    }
    if local_stale {
        // lookup() purged the stale copy; keep the summary in sync.
        proxies[home].summary.remove_key(ukey, skey);
    }

    // Local miss: ICP would query every neighbour now.
    *icp_queries += (groups - 1) as u64;

    // Summary cache probes the published peer summaries instead —
    // the same candidate selection the proxy daemon runs.
    let candidates: Vec<usize> = filter_candidates_key(
        proxies
            .iter()
            .enumerate()
            .filter(|&(g, _)| g != home)
            .map(|(g, p)| (g, p.summary.published())),
        ukey,
        skey,
    );

    // Send queries to the candidates; learn what they actually hold.
    let mut fresh_at_candidate = false;
    let mut stale_at_candidate = false;
    for &g in &candidates {
        m.queries_sent += 1;
        m.query_bytes += wire_cost::QUERY_BYTES as u64;
        match proxies[g].cache.peek(&r.url) {
            Some(have) if have == meta(r) => fresh_at_candidate = true,
            Some(_) => stale_at_candidate = true,
            None => m.wasted_queries += 1,
        }
    }

    // Ground truth over all neighbours, for false-miss accounting.
    let fresh_somewhere = (0..groups).any(|g| {
        g != home && proxies[g].cache.peek(&r.url) == Some(meta(r))
    });

    if fresh_at_candidate {
        m.remote_hits += 1;
        m.hit_bytes += r.size;
    } else {
        if stale_at_candidate {
            m.remote_stale_hits += 1;
        } else if !candidates.is_empty() {
            m.false_hits += 1;
        }
        if fresh_somewhere {
            m.false_misses += 1;
        }
    }

    // Either way the document ends up cached at the home proxy
    // (fetched from the peer on a remote hit, from the server
    // otherwise) — ICP-style simple sharing.
    if let Some(evicted) = proxies[home].cache.store(r.url, meta(r)) {
        proxies[home].summary.insert_key(ukey, skey);
        for victim in evicted {
            let vs = server_key(*server_of.get(&victim).expect("victim was inserted"));
            proxies[home]
                .summary
                .remove_key(&UrlKey::new(&url_key(victim)), &UrlKey::new(&vs));
        }
    }

    after_request(&mut proxies[home], m, r.time_ms, config, groups);
}

fn after_request(
    p: &mut ProxyState,
    m: &mut Metrics,
    now_ms: u64,
    config: &SummaryCacheConfig,
    groups: usize,
) {
    p.requests_since_publish += 1;
    let elapsed = now_ms.saturating_sub(p.last_publish_ms);
    if config.policy.should_publish(
        p.summary.fresh_docs(),
        p.summary.docs(),
        p.requests_since_publish,
        elapsed,
    ) {
        let out = p.summary.publish();
        m.publishes += 1;
        let fanout = if config.multicast_updates {
            1
        } else {
            (groups - 1) as u64
        };
        m.update_messages += fanout;
        m.update_bytes += out.update_bytes as u64 * fanout;
        p.requests_since_publish = 0;
        p.last_publish_ms = now_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_trace::{profile, Request, TraceStats};

    fn req(client: u32, url: u64, size: u64, lm: u64) -> Request {
        Request {
            time_ms: 0,
            client,
            url,
            server: (url / 10) as u32,
            size,
            last_modified: lm,
        }
    }

    fn trace2(requests: Vec<Request>) -> Trace {
        Trace {
            name: "t".into(),
            groups: 2,
            requests,
        }
    }

    fn exact_no_delay() -> SummaryCacheConfig {
        SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::Threshold(0.0), // publish after every insert
            multicast_updates: false,
        }
    }

    #[test]
    fn remote_hit_via_fresh_summary() {
        let t = trace2(vec![req(1, 1, 100, 0), req(0, 1, 100, 0)]);
        let r = simulate_summary_cache(&t, &exact_no_delay(), 10_000);
        assert_eq!(r.metrics.remote_hits, 1);
        assert_eq!(r.metrics.queries_sent, 1, "exactly one candidate queried");
        assert_eq!(r.metrics.false_hits, 0);
        assert_eq!(r.metrics.false_misses, 0);
        // ICP would have queried on both misses (1 miss each proxy).
        assert_eq!(r.icp_queries, 2);
    }

    #[test]
    fn stale_summaries_cause_false_misses() {
        // With updates that never fire, proxy 1's insert is never
        // published, so proxy 0 misses the remote copy.
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::EveryRequests(1_000),
            multicast_updates: false,
        };
        let t = trace2(vec![req(1, 1, 100, 0), req(0, 1, 100, 0)]);
        let r = simulate_summary_cache(&t, &cfg, 10_000);
        assert_eq!(r.metrics.remote_hits, 0);
        assert_eq!(r.metrics.false_misses, 1);
        assert_eq!(r.metrics.queries_sent, 0);
    }

    #[test]
    fn deletion_lag_causes_false_hits() {
        // Proxy 1 caches doc 1 (published), then evicts it via capacity
        // pressure (not yet published); proxy 0's probe still points at
        // proxy 1 -> wasted query = false hit.
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::EveryRequests(1_000), // publish manually never
            multicast_updates: false,
        };
        // Capacity 400 total -> 200/proxy -> two 100-byte docs each.
        let t = trace2(vec![
            req(1, 1, 100, 0),
            req(1, 3, 100, 0),
            req(1, 5, 100, 0), // evicts doc 1 at proxy 1
            req(0, 1, 100, 0), // proxy 0 probes...
        ]);
        // Force one publish after the first request so doc 1 is visible:
        // EveryRequests(1000) won't fire; use threshold instead.
        let cfg_pub_first = SummaryCacheConfig {
            policy: UpdatePolicy::Threshold(0.0),
            ..cfg
        };
        // With zero-delay the eviction is also published immediately, so
        // no false hit; with the huge delay nothing is ever published.
        // To exercise deletion lag we need a mid-size threshold: publish
        // fires when >= 50% of docs are fresh.
        let cfg_mid = SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::Threshold(0.5),
            multicast_updates: false,
        };
        let zero = simulate_summary_cache(&t, &cfg_pub_first, 400);
        assert_eq!(zero.metrics.false_hits, 0);
        let mid = simulate_summary_cache(&t, &cfg_mid, 400);
        // After req1: docs=1 fresh=1 -> publish (doc1 visible).
        // After req2: docs=2 fresh=1 -> publish (0.5 threshold met).
        // After req3: doc5 in, doc1 evicted; docs=2 fresh=1 -> publish...
        // publishes keep up here, so instead assert on the huge-delay
        // variant plus a manual middle publish via EveryRequests(2).
        let cfg_every2 = SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::EveryRequests(2),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&t, &cfg_every2, 400);
        // Proxy 1 publishes after its 2nd request (docs 1,3 visible).
        // Doc 1 evicted at request 3 (unpublished). Proxy 0 then probes:
        // summary says proxy 1 has doc 1, but it doesn't -> false hit.
        assert_eq!(r.metrics.false_hits, 1, "{:?}", r.metrics);
        assert_eq!(r.metrics.wasted_queries, 1);
        assert_eq!(mid.metrics.requests, 4);
    }

    #[test]
    fn bloom_false_positives_possible_but_rare() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom {
                load_factor: 16,
                hashes: 4,
            },
            policy: UpdatePolicy::Threshold(0.01),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, infinite / 10);
        let rates = r.metrics.rates();
        assert!(
            rates.false_hit_ratio < 0.05,
            "false hits should be rare: {}",
            rates.false_hit_ratio
        );
        assert!(r.metrics.publishes > 0, "updates must actually fire");
    }

    #[test]
    fn summary_cache_hit_ratio_close_to_icp_potential() {
        // The paper's core claim: at a 1% threshold the total hit ratio
        // degrades by at most ~2% relative to always-fresh directories.
        let trace = profile("UPisa").unwrap().generate_scaled(10);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let budget = infinite / 10;
        let fresh = simulate_summary_cache(&trace, &exact_no_delay(), budget);
        let delayed = simulate_summary_cache(
            &trace,
            &SummaryCacheConfig {
                kind: SummaryKind::ExactDirectory,
                policy: UpdatePolicy::Threshold(0.01),
                multicast_updates: false,
            },
            budget,
        );
        let f = fresh.metrics.rates().total_hit_ratio;
        let d = delayed.metrics.rates().total_hit_ratio;
        assert!(d <= f + 1e-9);
        assert!(f - d < 0.02, "degradation {:.4} too large", f - d);
    }

    #[test]
    fn message_reduction_vs_icp() {
        // At 1/10 trace scale each proxy caches only ~1.5k documents, so
        // a 1% threshold fires every ~15 new documents and update
        // traffic is proportionally heavier than in the paper's runs;
        // the full-size bench harness reproduces the 25-60x factor. Here
        // we assert the structural win: queries collapse by >10x and
        // total messages by a solid factor even at toy scale.
        let trace = profile("UPisa").unwrap().generate_scaled(10);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        // At this scale a proxy caches only dozens of documents, so a 1%
        // threshold degenerates to "publish every insert"; use the
        // paper's equivalent request-cadence trigger (Section V-A: the
        // thresholds translate to ~300-3000 requests between updates).
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom {
                load_factor: 16,
                hashes: 4,
            },
            policy: UpdatePolicy::EveryRequests(200),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, infinite / 10);
        assert!(
            r.icp_queries > r.metrics.queries_sent * 8,
            "query reduction: icp={} sc={}",
            r.icp_queries,
            r.metrics.queries_sent
        );
        let sc_msgs = r.metrics.queries_sent + r.metrics.update_messages;
        assert!(
            r.icp_queries > sc_msgs * 10,
            "message reduction: icp={} sc={}",
            r.icp_queries,
            sc_msgs
        );
    }

    #[test]
    fn memory_ordering_exact_vs_bloom() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let budget = infinite / 10;
        let mem = |kind| {
            simulate_summary_cache(
                &trace,
                &SummaryCacheConfig {
                    kind,
                    policy: UpdatePolicy::Threshold(0.01),
                    multicast_updates: false,
                },
                budget,
            )
            .avg_peer_summary_bytes
        };
        let exact = mem(SummaryKind::ExactDirectory);
        let server = mem(SummaryKind::ServerName);
        let bloom8 = mem(SummaryKind::Bloom { load_factor: 8, hashes: 4 });
        let bloom32 = mem(SummaryKind::Bloom { load_factor: 32, hashes: 4 });
        // Table III ordering: exact > server-name > bloom32 > bloom8.
        // (At full trace scale server-name approaches the paper's ~10x
        // advantage over exact; this scaled-down trace shows the
        // ordering with a smaller gap.)
        assert!(server < exact, "server {server} < exact {exact}");
        assert!(bloom8 < server, "bloom8 {bloom8} < server {server}");
        assert!(
            bloom32 > bloom8 * 3.0 && bloom32 < bloom8 * 5.0,
            "bloom sizes scale with load factor: {bloom8} vs {bloom32}"
        );
    }

    #[test]
    fn multicast_collapses_update_fanout() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let base = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: 16, hashes: 4 },
            policy: UpdatePolicy::EveryRequests(100),
            multicast_updates: false,
        };
        let uni = simulate_summary_cache(&trace, &base, infinite / 10);
        let multi = simulate_summary_cache(
            &trace,
            &SummaryCacheConfig { multicast_updates: true, ..base },
            infinite / 10,
        );
        assert_eq!(uni.metrics.publishes, multi.metrics.publishes);
        assert_eq!(
            uni.metrics.update_messages,
            multi.metrics.update_messages * 7,
            "8 groups: unicast fanout is 7x multicast"
        );
        assert_eq!(
            uni.metrics.local_hits + uni.metrics.remote_hits,
            multi.metrics.local_hits + multi.metrics.remote_hits,
            "transport does not change hit behaviour"
        );
    }

    #[test]
    #[should_panic(expected = "at least two proxies")]
    fn rejects_single_group() {
        let t = Trace {
            name: "x".into(),
            groups: 1,
            requests: vec![],
        };
        simulate_summary_cache(&t, &exact_no_delay(), 100);
    }
}
