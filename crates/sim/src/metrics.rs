//! Simulation counters and the derived rates the paper's figures plot.


/// Raw event counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// User requests processed.
    pub requests: u64,
    /// Requests served from the client's own proxy, fresh.
    pub local_hits: u64,
    /// Requests served from a neighbour proxy, fresh.
    pub remote_hits: u64,
    /// Local copy existed but was stale (counted as a miss).
    pub local_stale_hits: u64,
    /// A queried neighbour held only a stale copy (counted as a miss,
    /// but it did cost a query — the paper's *remote stale hit*).
    pub remote_stale_hits: u64,
    /// Summary indicated a copy somewhere, but no neighbour had any
    /// version — the paper's *false hit* (wasted queries).
    pub false_hits: u64,
    /// No summary indicated a copy, but a neighbour actually had a
    /// fresh one — the paper's *false miss* (lost remote hit).
    pub false_misses: u64,
    /// Query messages sent to neighbours (unicast).
    pub queries_sent: u64,
    /// Of those, queries to neighbours that had no copy at all.
    pub wasted_queries: u64,
    /// Summary update messages sent (one per neighbour per publish).
    pub update_messages: u64,
    /// Bytes of summary update traffic (paper size model).
    pub update_bytes: u64,
    /// Bytes of query traffic (paper size model: 70 B per query).
    pub query_bytes: u64,
    /// Total bytes requested by users.
    pub requested_bytes: u64,
    /// Bytes served by local + remote fresh hits.
    pub hit_bytes: u64,
    /// Times a proxy published its summary.
    pub publishes: u64,
}

impl Metrics {
    /// Fold another run's counters into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.requests += other.requests;
        self.local_hits += other.local_hits;
        self.remote_hits += other.remote_hits;
        self.local_stale_hits += other.local_stale_hits;
        self.remote_stale_hits += other.remote_stale_hits;
        self.false_hits += other.false_hits;
        self.false_misses += other.false_misses;
        self.queries_sent += other.queries_sent;
        self.wasted_queries += other.wasted_queries;
        self.update_messages += other.update_messages;
        self.update_bytes += other.update_bytes;
        self.query_bytes += other.query_bytes;
        self.requested_bytes += other.requested_bytes;
        self.hit_bytes += other.hit_bytes;
        self.publishes += other.publishes;
    }

    /// Load this run's counters into an `sc-obs` registry under the
    /// `sim_*` metric names, so figure/table builders read simulation
    /// results through the same snapshot machinery as the live proxy.
    /// Counters accumulate: recording two runs into one registry is a
    /// merge.
    pub fn record_into(&self, reg: &sc_obs::Registry) {
        reg.counter("sim_requests_total").add(self.requests);
        reg.counter("sim_local_hits_total").add(self.local_hits);
        reg.counter("sim_remote_hits_total").add(self.remote_hits);
        reg.counter("sim_local_stale_hits_total").add(self.local_stale_hits);
        reg.counter("sim_remote_stale_hits_total").add(self.remote_stale_hits);
        reg.counter("sim_false_hits_total").add(self.false_hits);
        reg.counter("sim_false_misses_total").add(self.false_misses);
        reg.counter("sim_queries_sent_total").add(self.queries_sent);
        reg.counter("sim_wasted_queries_total").add(self.wasted_queries);
        reg.counter("sim_update_messages_total").add(self.update_messages);
        reg.counter("sim_update_bytes_total").add(self.update_bytes);
        reg.counter("sim_query_bytes_total").add(self.query_bytes);
        reg.counter("sim_requested_bytes_total").add(self.requested_bytes);
        reg.counter("sim_hit_bytes_total").add(self.hit_bytes);
        reg.counter("sim_publishes_total").add(self.publishes);
    }

    /// Rebuild counters from an `sc-obs` snapshot previously populated
    /// by [`Metrics::record_into`] (absent metrics read as zero).
    pub fn from_obs(snap: &sc_obs::Snapshot) -> Metrics {
        Metrics {
            requests: snap.counter_value("sim_requests_total"),
            local_hits: snap.counter_value("sim_local_hits_total"),
            remote_hits: snap.counter_value("sim_remote_hits_total"),
            local_stale_hits: snap.counter_value("sim_local_stale_hits_total"),
            remote_stale_hits: snap.counter_value("sim_remote_stale_hits_total"),
            false_hits: snap.counter_value("sim_false_hits_total"),
            false_misses: snap.counter_value("sim_false_misses_total"),
            queries_sent: snap.counter_value("sim_queries_sent_total"),
            wasted_queries: snap.counter_value("sim_wasted_queries_total"),
            update_messages: snap.counter_value("sim_update_messages_total"),
            update_bytes: snap.counter_value("sim_update_bytes_total"),
            query_bytes: snap.counter_value("sim_query_bytes_total"),
            requested_bytes: snap.counter_value("sim_requested_bytes_total"),
            hit_bytes: snap.counter_value("sim_hit_bytes_total"),
            publishes: snap.counter_value("sim_publishes_total"),
        }
    }

    /// The derived per-request ratios.
    pub fn rates(&self) -> Rates {
        let n = self.requests.max(1) as f64;
        Rates {
            total_hit_ratio: (self.local_hits + self.remote_hits) as f64 / n,
            local_hit_ratio: self.local_hits as f64 / n,
            remote_hit_ratio: self.remote_hits as f64 / n,
            byte_hit_ratio: self.hit_bytes as f64 / self.requested_bytes.max(1) as f64,
            false_hit_ratio: self.false_hits as f64 / n,
            false_miss_ratio: self.false_misses as f64 / n,
            remote_stale_hit_ratio: self.remote_stale_hits as f64 / n,
            messages_per_request: (self.queries_sent + self.update_messages) as f64 / n,
            bytes_per_request: (self.query_bytes + self.update_bytes) as f64 / n,
        }
    }
}

/// Per-request ratios, the units of Figs. 1–2 and 5–8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// Fraction of requests served from any cache (local + remote).
    pub total_hit_ratio: f64,
    /// Fraction served from the requesting proxy’s own cache.
    pub local_hit_ratio: f64,
    /// Fraction served from a neighbour.
    pub remote_hit_ratio: f64,
    /// Byte-weighted hit ratio.
    pub byte_hit_ratio: f64,
    /// Requests whose summaries pointed somewhere but nobody had a copy.
    pub false_hit_ratio: f64,
    /// Requests whose summaries missed a fresh remote copy.
    pub false_miss_ratio: f64,
    /// Requests that found only a stale copy at a queried neighbour.
    pub remote_stale_hit_ratio: f64,
    /// Inter-proxy messages (queries + updates) per request.
    pub messages_per_request: f64,
    /// Inter-proxy bytes per request (Section V-D model).
    pub bytes_per_request: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_divide_by_requests() {
        let m = Metrics {
            requests: 100,
            local_hits: 30,
            remote_hits: 10,
            queries_sent: 20,
            update_messages: 5,
            query_bytes: 1400,
            update_bytes: 600,
            requested_bytes: 1000,
            hit_bytes: 400,
            ..Default::default()
        };
        let r = m.rates();
        assert!((r.total_hit_ratio - 0.4).abs() < 1e-12);
        assert!((r.remote_hit_ratio - 0.1).abs() < 1e-12);
        assert!((r.byte_hit_ratio - 0.4).abs() < 1e-12);
        assert!((r.messages_per_request - 0.25).abs() < 1e-12);
        assert!((r.bytes_per_request - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_rates_are_zero_not_nan() {
        let r = Metrics::default().rates();
        assert_eq!(r.total_hit_ratio, 0.0);
        assert_eq!(r.byte_hit_ratio, 0.0);
    }

    #[test]
    fn obs_roundtrip_accumulates() {
        let m = Metrics {
            requests: 100,
            remote_hits: 7,
            false_hits: 3,
            update_bytes: 4096,
            ..Default::default()
        };
        let reg = sc_obs::Registry::new();
        m.record_into(&reg);
        assert_eq!(Metrics::from_obs(&reg.snapshot()), m, "lossless roundtrip");
        // A second recording behaves like merge().
        m.record_into(&reg);
        let twice = Metrics::from_obs(&reg.snapshot());
        assert_eq!(twice.requests, 200);
        assert_eq!(twice.false_hits, 6);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Metrics {
            requests: 10,
            local_hits: 5,
            ..Default::default()
        };
        let b = Metrics {
            requests: 20,
            local_hits: 1,
            false_hits: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 30);
        assert_eq!(a.local_hits, 6);
        assert_eq!(a.false_hits, 2);
    }
}
