//! Replacement-policy sensitivity (the Section III caveat): rerun the
//! core Fig. 1 schemes under LRU, LFU, SIZE and GreedyDual-Size.

use crate::metrics::Metrics;
use crate::schemes::SchemeKind;
use sc_cache::{DocMeta, Lookup, Policy, PolicyCache};
use sc_trace::{group_of_client, Trace};

fn meta(r: &sc_trace::Request) -> DocMeta {
    DocMeta {
        size: r.size,
        last_modified: r.last_modified,
    }
}

/// Simulate a cooperation scheme under an arbitrary replacement policy.
/// Supports the three headline schemes (no-sharing, simple sharing,
/// global); single-copy's promotion semantics are LRU-specific and stay
/// in [`crate::simulate_scheme`].
pub fn simulate_scheme_with_policy(
    trace: &Trace,
    scheme: SchemeKind,
    policy: Policy,
    total_cache_bytes: u64,
) -> Metrics {
    match scheme {
        SchemeKind::Global => {
            let mut cache: PolicyCache<u64> = PolicyCache::new(policy, total_cache_bytes.max(1));
            let mut m = Metrics::default();
            for r in &trace.requests {
                m.requests += 1;
                m.requested_bytes += r.size;
                match cache.lookup(&r.url, meta(r)) {
                    Lookup::Hit => {
                        m.local_hits += 1;
                        m.hit_bytes += r.size;
                    }
                    Lookup::StaleHit => {
                        m.local_stale_hits += 1;
                        cache.store(r.url, meta(r));
                    }
                    Lookup::Miss => {
                        cache.store(r.url, meta(r));
                    }
                }
            }
            m
        }
        SchemeKind::NoSharing | SchemeKind::SimpleSharing => {
            let groups = trace.groups as usize;
            let per_proxy = (total_cache_bytes / groups as u64).max(1);
            let mut caches: Vec<PolicyCache<u64>> =
                (0..groups).map(|_| PolicyCache::new(policy, per_proxy)).collect();
            let mut m = Metrics::default();
            for r in &trace.requests {
                m.requests += 1;
                m.requested_bytes += r.size;
                let home = group_of_client(r.client, trace.groups) as usize;
                match caches[home].lookup(&r.url, meta(r)) {
                    Lookup::Hit => {
                        m.local_hits += 1;
                        m.hit_bytes += r.size;
                        continue;
                    }
                    Lookup::StaleHit => m.local_stale_hits += 1,
                    Lookup::Miss => {}
                }
                if scheme == SchemeKind::SimpleSharing {
                    let mut fresh = false;
                    let mut stale = false;
                    for (g, cache) in caches.iter().enumerate() {
                        if g == home {
                            continue;
                        }
                        match cache.peek(&r.url) {
                            Some(have) if have == meta(r) => {
                                fresh = true;
                                break;
                            }
                            Some(_) => stale = true,
                            None => {}
                        }
                    }
                    if fresh {
                        m.remote_hits += 1;
                        m.hit_bytes += r.size;
                    } else if stale {
                        m.remote_stale_hits += 1;
                    }
                }
                caches[home].store(r.url, meta(r));
            }
            m
        }
        other => panic!("scheme {other:?} not supported under policy sweeps"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_scheme;
    use sc_trace::{profile, TraceStats};

    #[test]
    fn lru_policy_agrees_with_dedicated_lru_simulator() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        for scheme in [SchemeKind::NoSharing, SchemeKind::SimpleSharing, SchemeKind::Global] {
            let a = simulate_scheme(&trace, scheme, budget);
            let b = simulate_scheme_with_policy(&trace, scheme, Policy::Lru, budget);
            assert_eq!(a.local_hits, b.local_hits, "{scheme:?}");
            assert_eq!(a.remote_hits, b.remote_hits, "{scheme:?}");
            assert_eq!(a.local_stale_hits, b.local_stale_hits, "{scheme:?}");
        }
    }

    #[test]
    fn gds_beats_lru_on_hit_ratio() {
        // GreedyDual-Size optimizes hit ratio by preferring to keep
        // small documents; with heavy-tailed sizes it should match or
        // beat LRU on (object) hit ratio.
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 20;
        let lru = simulate_scheme_with_policy(&trace, SchemeKind::Global, Policy::Lru, budget)
            .rates()
            .total_hit_ratio;
        let gds = simulate_scheme_with_policy(
            &trace,
            SchemeKind::Global,
            Policy::GreedyDualSize,
            budget,
        )
        .rates()
        .total_hit_ratio;
        assert!(gds > lru - 0.01, "gds {gds} should not lose to lru {lru}");
    }

    #[test]
    fn sharing_helps_under_every_policy() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        for policy in Policy::all() {
            let none =
                simulate_scheme_with_policy(&trace, SchemeKind::NoSharing, policy, budget)
                    .rates()
                    .total_hit_ratio;
            let simple =
                simulate_scheme_with_policy(&trace, SchemeKind::SimpleSharing, policy, budget)
                    .rates()
                    .total_hit_ratio;
            assert!(
                simple > none + 0.03,
                "{}: sharing must help ({simple} vs {none})",
                policy.label()
            );
        }
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn single_copy_rejected() {
        let trace = profile("UPisa").unwrap().generate_scaled(100);
        simulate_scheme_with_policy(&trace, SchemeKind::SingleCopy, Policy::Lfu, 1_000_000);
    }
}
