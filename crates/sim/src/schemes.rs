//! The Section III cooperation-scheme comparison (Fig. 1).
//!
//! Four schemes plus the paper's "global cache 10 % smaller" control:
//!
//! * **NoSharing** — proxies serve only their own clients;
//! * **SimpleSharing** — ICP-style: a local miss that some neighbour can
//!   serve becomes a remote hit, and the document is also cached
//!   locally (duplicates allowed, no coordinated replacement);
//! * **SingleCopy** — like SimpleSharing but the fetching proxy does
//!   *not* keep a copy; the serving proxy promotes the document instead;
//! * **Global** — one unified LRU cache of the combined capacity;
//! * **GlobalShrunk** — Global with 10 % less capacity (the paper's
//!   check that duplicate waste barely matters).

use crate::keys::url_key;
use crate::metrics::Metrics;
use sc_cache::{DocMeta, Lookup, WebCache};
use sc_trace::{group_of_client, Trace};
use summary_cache_core::{filter_candidates, SummaryProbe};

/// The degenerate "summary" of the directly-consulting schemes: a
/// neighbour's actual cache directory. Membership is exact (ICP asks
/// the real cache); the key is the simulator's 8-byte URL encoding
/// ([`url_key`]), and the server component is unused.
struct CacheDirectory<'a>(&'a WebCache<u64>);

impl SummaryProbe for CacheDirectory<'_> {
    fn probe(&self, url: &[u8], _server: &[u8]) -> bool {
        let mut id = [0u8; 8];
        if url.len() != 8 {
            return false;
        }
        id.copy_from_slice(url);
        self.0.peek(&u64::from_le_bytes(id)).is_some()
    }
}

/// Which cooperation scheme to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Proxies serve only their own clients.
    NoSharing,
    /// ICP-style sharing: remote hits are fetched and cached locally.
    SimpleSharing,
    /// Sharing without duplication: the serving proxy promotes its copy.
    SingleCopy,
    /// One unified cache of the combined capacity.
    Global,
    /// Global cache with capacity scaled by 0.9.
    GlobalShrunk,
}

impl SchemeKind {
    /// All schemes in Fig. 1 order.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::NoSharing,
            SchemeKind::SimpleSharing,
            SchemeKind::SingleCopy,
            SchemeKind::Global,
            SchemeKind::GlobalShrunk,
        ]
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::NoSharing => "no-sharing",
            SchemeKind::SimpleSharing => "simple",
            SchemeKind::SingleCopy => "single-copy",
            SchemeKind::Global => "global",
            SchemeKind::GlobalShrunk => "global-90%",
        }
    }
}

/// Simulate `scheme` over `trace` with `total_cache_bytes` of combined
/// cache, split evenly across the trace's proxy groups (global schemes
/// use it as one cache).
pub fn simulate_scheme(trace: &Trace, scheme: SchemeKind, total_cache_bytes: u64) -> Metrics {
    match scheme {
        SchemeKind::Global => simulate_global(trace, total_cache_bytes),
        SchemeKind::GlobalShrunk => {
            simulate_global(trace, (total_cache_bytes as f64 * 0.9) as u64)
        }
        _ => simulate_partitioned(trace, scheme, total_cache_bytes),
    }
}

fn meta(r: &sc_trace::Request) -> DocMeta {
    DocMeta {
        size: r.size,
        last_modified: r.last_modified,
    }
}

fn simulate_global(trace: &Trace, cache_bytes: u64) -> Metrics {
    let mut cache: WebCache<u64> = WebCache::new(cache_bytes.max(1));
    let mut m = Metrics::default();
    for r in &trace.requests {
        m.requests += 1;
        m.requested_bytes += r.size;
        match cache.lookup(&r.url, meta(r)) {
            Lookup::Hit => {
                m.local_hits += 1;
                m.hit_bytes += r.size;
            }
            Lookup::StaleHit => {
                m.local_stale_hits += 1;
                cache.store(r.url, meta(r));
            }
            Lookup::Miss => {
                cache.store(r.url, meta(r));
            }
        }
    }
    m
}

fn simulate_partitioned(trace: &Trace, scheme: SchemeKind, total_cache_bytes: u64) -> Metrics {
    let groups = trace.groups as usize;
    let per_proxy = (total_cache_bytes / groups as u64).max(1);
    let mut caches: Vec<WebCache<u64>> = (0..groups).map(|_| WebCache::new(per_proxy)).collect();
    let mut m = Metrics::default();

    for r in &trace.requests {
        m.requests += 1;
        m.requested_bytes += r.size;
        let home = group_of_client(r.client, trace.groups) as usize;
        match caches[home].lookup(&r.url, meta(r)) {
            Lookup::Hit => {
                m.local_hits += 1;
                m.hit_bytes += r.size;
                continue;
            }
            Lookup::StaleHit => {
                m.local_stale_hits += 1;
            }
            Lookup::Miss => {}
        }
        if scheme == SchemeKind::NoSharing {
            caches[home].store(r.url, meta(r));
            continue;
        }
        // Ask the neighbours: candidate selection runs through the same
        // probe abstraction as the summary schemes, against the exact
        // cache directory (ICP consults the real cache, so membership
        // is never wrong; message accounting lives in the summary
        // simulator). Freshness is still checked per candidate.
        let ukey = url_key(r.url);
        let candidates = filter_candidates(
            caches
                .iter()
                .enumerate()
                .filter(|&(g, _)| g != home)
                .map(|(g, c)| (g, CacheDirectory(c))),
            &ukey,
            &[],
        );
        let mut remote: Option<usize> = None;
        let mut remote_stale = false;
        for g in candidates {
            if caches[g].peek(&r.url) == Some(meta(r)) {
                remote = Some(g);
                break;
            }
            remote_stale = true;
        }
        match remote {
            Some(g) => {
                m.remote_hits += 1;
                m.hit_bytes += r.size;
                match scheme {
                    SchemeKind::SimpleSharing => {
                        // Fetch from the neighbour and cache locally.
                        caches[home].store(r.url, meta(r));
                    }
                    SchemeKind::SingleCopy => {
                        // The neighbour promotes its copy instead.
                        caches[g].touch(&r.url);
                    }
                    _ => unreachable!("global handled above"),
                }
            }
            None => {
                if remote_stale {
                    m.remote_stale_hits += 1;
                }
                caches[home].store(r.url, meta(r));
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_trace::{profile, Request, TraceStats};

    fn req(client: u32, url: u64, size: u64, lm: u64) -> Request {
        Request {
            time_ms: 0,
            client,
            url,
            server: 0,
            size,
            last_modified: lm,
        }
    }

    fn two_proxy_trace(requests: Vec<Request>) -> Trace {
        Trace {
            name: "t".into(),
            groups: 2,
            requests,
        }
    }

    #[test]
    fn sharing_turns_neighbour_copies_into_remote_hits() {
        // Client 0 -> proxy 0, client 1 -> proxy 1.
        let t = two_proxy_trace(vec![req(0, 1, 100, 0), req(1, 1, 100, 0)]);
        let none = simulate_scheme(&t, SchemeKind::NoSharing, 10_000);
        assert_eq!(none.local_hits + none.remote_hits, 0);
        let simple = simulate_scheme(&t, SchemeKind::SimpleSharing, 10_000);
        assert_eq!(simple.remote_hits, 1);
        let single = simulate_scheme(&t, SchemeKind::SingleCopy, 10_000);
        assert_eq!(single.remote_hits, 1);
        let global = simulate_scheme(&t, SchemeKind::Global, 10_000);
        assert_eq!(global.local_hits, 1, "one unified cache: plain hit");
    }

    #[test]
    fn simple_sharing_duplicates_single_copy_does_not() {
        // After a remote hit, a repeat request from the same client:
        // under simple sharing it is now a *local* hit; under
        // single-copy it is a remote hit again.
        let t = two_proxy_trace(vec![
            req(1, 1, 100, 0), // proxy 1 caches
            req(0, 1, 100, 0), // proxy 0 remote hit
            req(0, 1, 100, 0), // depends on scheme
        ]);
        let simple = simulate_scheme(&t, SchemeKind::SimpleSharing, 10_000);
        assert_eq!((simple.local_hits, simple.remote_hits), (1, 1));
        let single = simulate_scheme(&t, SchemeKind::SingleCopy, 10_000);
        assert_eq!((single.local_hits, single.remote_hits), (0, 2));
    }

    #[test]
    fn single_copy_promotion_protects_shared_documents() {
        // Proxy 1 has capacity for 2 docs of 100 bytes (total 400 split
        // across 2 proxies = 200 each). Doc 1 is remotely hit (promoted),
        // then doc 3 is inserted at proxy 1: doc 5 (not promoted) must be
        // the victim, keeping doc 1 remotely available.
        let t = two_proxy_trace(vec![
            req(1, 1, 100, 0), // proxy1: [1]
            req(1, 5, 100, 0), // proxy1: [5,1]
            req(0, 1, 100, 0), // remote hit -> promote 1 at proxy1: [1,5]
            req(1, 3, 100, 0), // proxy1 evicts 5: [3,1]
            req(0, 1, 100, 0), // still a remote hit
        ]);
        let single = simulate_scheme(&t, SchemeKind::SingleCopy, 400);
        assert_eq!(single.remote_hits, 2);
    }

    #[test]
    fn stale_neighbour_copy_is_remote_stale_hit() {
        let t = two_proxy_trace(vec![
            req(1, 1, 100, 0), // proxy 1 caches version 0
            req(0, 1, 100, 7), // version 7 requested: remote copy stale
        ]);
        let m = simulate_scheme(&t, SchemeKind::SimpleSharing, 10_000);
        assert_eq!(m.remote_hits, 0);
        assert_eq!(m.remote_stale_hits, 1);
    }

    #[test]
    fn fig1_ordering_holds_on_profile_trace() {
        // The paper's headline result: every sharing scheme beats no
        // sharing; sharing schemes land close to the global cache.
        let trace = profile("UPisa").unwrap().generate_scaled(10);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let budget = (infinite as f64 * 0.10) as u64;
        let hit = |k: SchemeKind| simulate_scheme(&trace, k, budget).rates().total_hit_ratio;
        let none = hit(SchemeKind::NoSharing);
        let simple = hit(SchemeKind::SimpleSharing);
        let single = hit(SchemeKind::SingleCopy);
        let global = hit(SchemeKind::Global);
        assert!(simple > none + 0.03, "sharing helps: {simple} vs {none}");
        assert!(single > none + 0.03);
        assert!(global > none + 0.03);
        assert!(
            (simple - global).abs() < 0.1,
            "simple ({simple}) ~ global ({global})"
        );
    }

    #[test]
    fn global_shrunk_close_to_global() {
        let trace = profile("UPisa").unwrap().generate_scaled(10);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        let budget = (infinite as f64 * 0.10) as u64;
        let g = simulate_scheme(&trace, SchemeKind::Global, budget).rates().total_hit_ratio;
        let s = simulate_scheme(&trace, SchemeKind::GlobalShrunk, budget)
            .rates()
            .total_hit_ratio;
        assert!(s <= g + 1e-9);
        assert!(g - s < 0.03, "10% less space barely matters: {g} vs {s}");
    }
}
