//! MD5 throughput — the paper argues "the computational overhead of MD5
//! is negligible compared with the user and system CPU overhead
//! incurred by caching documents" (Section V-E); this bench quantifies
//! the per-URL hashing cost that claim rests on.

use sc_util::bench::{black_box, Bench};

fn main() {
    let mut b = Bench::new("md5");
    for len in [16usize, 50, 200, 1024, 64 * 1024] {
        let data = vec![0xabu8; len];
        b.bench_throughput(&format!("digest/{len}"), len as u64, || {
            black_box(sc_md5::md5(black_box(&data)));
        });
    }

    let url = b"http://server-123.trace.invalid/doc/456789";
    b.bench("typical-url", || {
        black_box(sc_md5::md5(black_box(url)));
    });
}
