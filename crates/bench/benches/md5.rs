//! MD5 throughput — the paper argues "the computational overhead of MD5
//! is negligible compared with the user and system CPU overhead
//! incurred by caching documents" (Section V-E); this bench quantifies
//! the per-URL hashing cost that claim rests on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    for len in [16usize, 50, 200, 1024, 64 * 1024] {
        let data = vec![0xabu8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("digest", len), &data, |b, d| {
            b.iter(|| sc_md5::md5(black_box(d)))
        });
    }
    g.finish();

    c.bench_function("md5/typical-url", |b| {
        let url = b"http://server-123.trace.invalid/doc/456789";
        b.iter(|| sc_md5::md5(black_box(url)))
    });
}

criterion_group!(benches, bench_md5);
criterion_main!(benches);
