//! Codec costs: ICP query/reply and DIRUPDATE encode/decode, and the
//! HTTP head parser — the per-message CPU the protocol adds.

use sc_bloom::Flip;
use sc_util::bench::{black_box, Bench};
use sc_wire::http;
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};

fn bench_icp(b: &mut Bench) {
    let query = IcpMessage::Query {
        request_number: 42,
        requester: 7,
        url: "http://server-123.trace.invalid/doc/456789".into(),
    };
    let query_bytes = query.encode(1).unwrap();

    b.bench("icp/encode-query", || {
        black_box(black_box(&query).encode(1).unwrap());
    });
    b.bench("icp/decode-query", || {
        black_box(IcpMessage::decode(black_box(&query_bytes)).unwrap());
    });

    let update = IcpMessage::DirUpdate {
        request_number: 1,
        sender: 2,
        update: DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 1 << 20,
            generation: 7,
            seq: 42,
            content: DirContent::Flips((0..320).map(Flip::set).collect()),
        },
    };
    let update_bytes = update.encode(1).unwrap();
    b.bench_throughput(
        "icp/dirupdate/encode-320-flips",
        update_bytes.len() as u64,
        || {
            black_box(black_box(&update).encode(1).unwrap());
        },
    );
    b.bench_throughput(
        "icp/dirupdate/decode-320-flips",
        update_bytes.len() as u64,
        || {
            black_box(IcpMessage::decode(black_box(&update_bytes)).unwrap());
        },
    );
}

fn bench_http(b: &mut Bench) {
    let req = http::build_request(
        "http://server-123.trace.invalid/doc/456789",
        &[
            ("Host", "server-123.trace.invalid"),
            ("X-Doc-Size", "8192"),
            ("X-Doc-LM", "123456"),
        ],
    );
    b.bench("http/parse-request", || {
        black_box(http::parse_request(black_box(req.as_bytes())).unwrap());
    });
    b.bench("http/build-response", || {
        black_box(http::build_response(
            200,
            "OK",
            &[("Content-Length", "8192"), ("X-Doc-LM", "123456")],
        ));
    });
}

fn main() {
    let mut b = Bench::new("wire");
    bench_icp(&mut b);
    bench_http(&mut b);
}
