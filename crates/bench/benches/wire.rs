//! Codec costs: ICP query/reply and DIRUPDATE encode/decode, and the
//! HTTP head parser — the per-message CPU the protocol adds.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sc_bloom::Flip;
use sc_wire::http;
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};

fn bench_icp(c: &mut Criterion) {
    let query = IcpMessage::Query {
        request_number: 42,
        requester: 7,
        url: "http://server-123.trace.invalid/doc/456789".into(),
    };
    let query_bytes = query.encode(1).unwrap();

    c.bench_function("icp/encode-query", |b| {
        b.iter(|| black_box(&query).encode(1).unwrap())
    });
    c.bench_function("icp/decode-query", |b| {
        b.iter(|| IcpMessage::decode(black_box(&query_bytes)).unwrap())
    });

    let update = IcpMessage::DirUpdate {
        request_number: 1,
        sender: 2,
        update: DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 1 << 20,
            content: DirContent::Flips((0..320).map(Flip::set).collect()),
        },
    };
    let update_bytes = update.encode(1).unwrap();
    let mut g = c.benchmark_group("icp/dirupdate");
    g.throughput(Throughput::Bytes(update_bytes.len() as u64));
    g.bench_function("encode-320-flips", |b| {
        b.iter(|| black_box(&update).encode(1).unwrap())
    });
    g.bench_function("decode-320-flips", |b| {
        b.iter(|| IcpMessage::decode(black_box(&update_bytes)).unwrap())
    });
    g.finish();
}

fn bench_http(c: &mut Criterion) {
    let req = http::build_request(
        "http://server-123.trace.invalid/doc/456789",
        &[
            ("Host", "server-123.trace.invalid"),
            ("X-Doc-Size", "8192"),
            ("X-Doc-LM", "123456"),
        ],
    );
    c.bench_function("http/parse-request", |b| {
        b.iter(|| http::parse_request(black_box(req.as_bytes())).unwrap())
    });
    c.bench_function("http/build-response", |b| {
        b.iter(|| {
            http::build_response(
                200,
                "OK",
                &[("Content-Length", "8192"), ("X-Doc-LM", "123456")],
            )
        })
    });
}

criterion_group!(benches, bench_icp, bench_http);
criterion_main!(benches);
