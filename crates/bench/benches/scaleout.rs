//! The big-N scaleout benchmark: what peer scaling actually costs on
//! the wire, measured against the paper's Section V-F arithmetic.
//!
//! Three experiments, all deterministic (no timing windows):
//!
//! 1. **GR vs raw DIRFULL** — one full-bitmap restatement of a
//!    load-factor-16 filter at 12.5 % document occupancy, encoded both
//!    ways through the real wire codec. The Golomb–Rice form must cut
//!    the resync cost at least 3x (the fill is ~3 %, so the coded gap
//!    stream is far below the 1 bit/bit of the raw bitmap).
//! 2. **Per-proxy update bytes vs N** — quiet simnet runs at
//!    N ∈ {16, 64, 128} serving one fixed client population (the
//!    paper's deployment: a federation shares its misses, so adding
//!    proxies divides the insert stream). Per-peer lanes fan every
//!    delta out to N−1 peers, so naive per-event restatement predicts
//!    per-proxy bytes growing ≈ 8.5x from 16 to 128; batching flips
//!    into shared datagrams and coalescing publishes per keep-alive
//!    tick must keep the measured growth sub-linear (< 8x).
//! 3. **Reconvergence under faults** — the same Ns through a
//!    crash+partition plan, recording settle windows and resync counts,
//!    next to the Section V-F model's per-request overhead for each N.
//!
//! Run via `scripts/bench.sh`, which sets `SC_BENCH_JSON` to write the
//! tracked `BENCH_scaleout.json` at the repo root.

use sc_bloom::{compress, BitVec, HashSpec};
use sc_json::Value;
use sc_proxy::simnet::{Sim, SimConfig, SimReport};
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use summary_cache_core::scalability::{estimate, Deployment};

/// The router's DIRFULL_GR split size (router.rs `GR_SEGMENT_BITS`):
/// bitmaps larger than this restate as several word-aligned segments.
const GR_SEGMENT_BITS: u32 = 200_000;

fn url(i: u32) -> Vec<u8> {
    format!("http://server-{}.trace.invalid/doc/{i}", i / 12).into_bytes()
}

fn encoded_dirfull(bits: u32, content: DirContent) -> usize {
    IcpMessage::DirUpdate {
        request_number: 7,
        sender: 0,
        update: DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: bits,
            generation: 1,
            seq: 9,
            content,
        },
    }
    .encode(0)
    .expect("encodable restatement")
    .len()
}

/// Experiment 1: raw vs Golomb–Rice restatement bytes.
fn bench_gr_vs_raw(results: &mut Vec<(String, Value)>) {
    const BITS: u32 = 400_000; // raw bitmap 50 KB: fits one DIRFULL
    const LOAD_FACTOR: u32 = 16;
    let capacity = BITS / LOAD_FACTOR; // documents the filter is sized for
    let docs = capacity / 8; // 12.5 % occupancy
    let spec = HashSpec::paper_default(4, BITS).expect("valid spec");
    let mut bits = BitVec::new(BITS as usize);
    for i in 0..docs {
        for idx in spec.indices(&url(i)) {
            bits.set(idx as usize, true);
        }
    }
    let fill = bits.count_ones() as f64 / BITS as f64;

    let raw = encoded_dirfull(BITS, DirContent::Bitmap(bits.as_words().to_vec()));

    // Split exactly as the router does: word-aligned segments sharing
    // one (generation, seq) stamp, each its own datagram.
    let mut gr = 0usize;
    let mut first_bit = 0u32;
    while first_bit < BITS {
        let seg_bits = GR_SEGMENT_BITS.min(BITS - first_bit);
        let mut segment = BitVec::new(seg_bits as usize);
        for i in 0..seg_bits as usize {
            if bits.get(first_bit as usize + i) {
                segment.set(i, true);
            }
        }
        let coded = compress(&segment);
        gr += encoded_dirfull(
            BITS,
            DirContent::CompressedBitmap {
                first_bit,
                seg_bits,
                ones: coded.ones,
                rice: coded.rice,
                data: coded.data,
            },
        );
        first_bit += seg_bits;
    }

    let ratio = raw as f64 / gr as f64;
    println!(
        "scaleout/gr: raw {raw} B, gr {gr} B, ratio {ratio:.2}x (fill {:.2}%)",
        fill * 100.0
    );
    assert!(
        ratio >= 3.0,
        "GR must cut DIRFULL restatement bytes at least 3x at 12.5% occupancy, got {ratio:.2}x"
    );
    results.push(("gr/raw-dirfull-bytes".into(), Value::UInt(raw as u64)));
    results.push(("gr/gr-dirfull-bytes".into(), Value::UInt(gr as u64)));
    results.push(("gr/ratio".into(), Value::Float(ratio)));
    results.push(("gr/occupancy".into(), Value::Float(0.125)));
    results.push(("gr/bit-fill".into(), Value::Float(fill)));
}

/// A quiet (fault-free) run: the steady-state update-byte curve. The
/// cluster serves a fixed total insert stream (1 920 ops, 120 per proxy
/// at N = 16 down to 15 at N = 128) — the paper's scaling question is
/// what federating the same workload across more proxies costs.
fn quiet_run(n: usize) -> SimReport {
    let cfg = SimConfig {
        proxies: n,
        local_ops: 1_920,
        horizon_ms: 2_000,
        keepalive_ms: 50,
        loss: 0.0,
        duplicate: 0.0,
        delay_us: (200, 2_000),
        crashes: 0,
        partitions: 0,
        fanout_slots: 4,
        ..SimConfig::default()
    };
    let report = Sim::new(cfg, 0x5CA1E + n as u64).run();
    assert!(report.converged, "quiet {n}-proxy run must converge");
    report
}

/// A faulted run: crash + partition, measuring reconvergence.
fn faulted_run(n: usize) -> SimReport {
    let cfg = SimConfig {
        proxies: n,
        local_ops: 640,
        horizon_ms: 600,
        keepalive_ms: 50,
        loss: 0.05,
        duplicate: 0.02,
        delay_us: (200, 20_000),
        crashes: 1,
        partitions: 1,
        fanout_slots: 4,
        ..SimConfig::default()
    };
    let report = Sim::new(cfg, 0xFA17 + n as u64).run();
    assert!(report.converged, "faulted {n}-proxy run must reconverge");
    report
}

/// The Section V-F arithmetic matched to the simulated deployment:
/// threshold-0 policy publishes every insert, so the model's
/// requests-between-updates pins at 1 and its per-request update cost
/// is exactly linear in the peer count — the curve the measured lanes
/// must beat.
fn model_for(n: u32) -> (f64, u64) {
    let docs = 48u64; // SimConfig::default cache_docs
    let e = estimate(Deployment {
        proxies: n,
        cache_bytes: docs * 8 << 10, // expected_docs() divides by 8 KB
        load_factor: 8,
        hashes: 4,
        threshold: 1.0 / docs as f64,
    });
    (e.update_messages_per_request, e.update_message_bytes)
}

/// Experiments 2 + 3: the measured N-curve next to the model.
fn bench_scaling(results: &mut Vec<(String, Value)>) {
    let mut per_proxy_bytes = Vec::new();
    for n in [16usize, 64, 128] {
        let quiet = quiet_run(n);
        let horizon_s = 2.0;
        let bpp = quiet.update_bytes_sent as f64 / n as f64;
        let bpps = bpp / horizon_s;
        let per_op = quiet.update_bytes_sent as f64 / quiet.events_processed as f64;
        let (model_msgs, model_bytes) = model_for(n as u32);

        let faulted = faulted_run(n);
        let settle = faulted.settle_steps.unwrap_or(usize::MAX) as u64;

        println!(
            "scaleout/n{n}: {bpps:.0} update B/proxy/s, {} datagrams, settle {settle} windows, {} resyncs",
            quiet.update_datagrams_sent, faulted.resyncs_requested
        );
        results.push((format!("n{n}/update-bytes-per-proxy-per-sec"), Value::Float(bpps)));
        results.push((format!("n{n}/update-bytes-per-proxy"), Value::Float(bpp)));
        results.push((format!("n{n}/update-bytes-per-event"), Value::Float(per_op)));
        results.push((
            format!("n{n}/update-datagrams"),
            Value::UInt(quiet.update_datagrams_sent),
        ));
        results.push((
            format!("n{n}/other-bytes"),
            Value::UInt(quiet.other_bytes_sent),
        ));
        results.push((
            format!("n{n}/model-update-messages-per-request"),
            Value::Float(model_msgs),
        ));
        results.push((
            format!("n{n}/model-update-message-bytes"),
            Value::UInt(model_bytes),
        ));
        results.push((format!("n{n}/settle-windows"), Value::UInt(settle)));
        results.push((
            format!("n{n}/resyncs"),
            Value::UInt(faulted.resyncs_requested),
        ));
        results.push((
            format!("n{n}/replicas-installed"),
            Value::UInt(faulted.replicas_installed),
        ));
        per_proxy_bytes.push((n, bpp));
    }

    let (_, b16) = per_proxy_bytes[0];
    let (_, b128) = *per_proxy_bytes.last().expect("ran the 128 row");
    let growth = b128 / b16;
    // 8x the proxies over the same workload: naive per-event
    // restatement (a datagram per insert per peer) predicts per-proxy
    // bytes growing with the lane count, 127/15 ≈ 8.5x; flip batching
    // and per-tick coalescing must hold the measured curve under 8.
    println!("scaleout/growth: per-proxy update bytes 16->128 proxies: {growth:.2}x");
    assert!(
        growth < 8.0,
        "per-proxy update bytes must grow sub-linearly in N, got {growth:.2}x"
    );
    results.push((
        "scaling/per-proxy-bytes-128-over-16".into(),
        Value::Float(growth),
    ));
}

fn main() {
    let mut results: Vec<(String, Value)> = Vec::new();
    bench_gr_vs_raw(&mut results);
    bench_scaling(&mut results);

    // Tracked JSON output: only when the driver asks for it
    // (`scripts/bench.sh` sets SC_BENCH_JSON to the repo-root path), so
    // `cargo test` runs never dirty the tree.
    if let Ok(path) = std::env::var("SC_BENCH_JSON") {
        let doc = Value::Object(vec![
            ("suite".into(), Value::Str("scaleout".into())),
            ("results".into(), Value::Object(results)),
        ]);
        std::fs::write(&path, doc.to_pretty() + "\n").expect("write SC_BENCH_JSON");
        println!("wrote {path}");
    }
}
