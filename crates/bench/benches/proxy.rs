//! End-to-end proxy throughput: requests/second through a live
//! three-proxy loopback cluster per cooperation mode, with a zero-delay
//! origin so the protocol path itself is what's measured.

use sc_cache::DocMeta;
use sc_proxy::client::ProxyClient;
use sc_proxy::{Cluster, ClusterConfig, Mode};
use sc_util::bench::Bench;
use std::time::Duration;

fn cluster_cfg(mode: Mode) -> ClusterConfig {
    ClusterConfig {
        proxies: 3,
        mode,
        cache_bytes: 32 << 20,
        expected_docs: 4_000,
        origin_delay: Duration::ZERO,
        icp_timeout_ms: 200,
        keepalive_ms: 0,
        update_loss: 0.0,
    }
}

const BATCH: u64 = 200;

fn main() {
    let mut b = Bench::new("proxy");

    for mode in [Mode::NoIcp, Mode::Icp, Mode::summary_cache_default()] {
        // One long-lived cluster + connection per mode; each iteration
        // drives a batch of cache-miss requests through the full path
        // (parse, cache, peering, origin fetch, store, respond).
        let cluster = Cluster::start(&cluster_cfg(mode)).expect("cluster");
        let mut client = ProxyClient::connect(
            cluster.daemons[0].http_addr,
            cluster.daemons[0].stats.clone(),
        )
        .expect("connect");
        let mut next_doc: u64 = 0;
        b.bench_throughput(
            &format!("request-path/{}", mode.label()),
            BATCH,
            || {
                for _ in 0..BATCH {
                    let url = format!(
                        "http://server-{}.trace.invalid/doc/{next_doc}",
                        next_doc % 50
                    );
                    next_doc += 1;
                    let status = client
                        .get(&url, DocMeta { size: 2048, last_modified: 1 })
                        .expect("request");
                    assert_eq!(status, 200);
                }
            },
        );
        cluster.shutdown();
    }

    // The hit path, isolated: one hot document requested repeatedly.
    let cluster = Cluster::start(&cluster_cfg(Mode::NoIcp)).expect("cluster");
    let mut client = ProxyClient::connect(
        cluster.daemons[0].http_addr,
        cluster.daemons[0].stats.clone(),
    )
    .expect("connect");
    let url = "http://server-0.trace.invalid/doc/hot";
    let meta = DocMeta { size: 2048, last_modified: 1 };
    client.get(url, meta).expect("warm");
    b.bench_throughput("hit-path/local-hit", BATCH, || {
        for _ in 0..BATCH {
            client.get(url, meta).expect("hit");
        }
    });
    cluster.shutdown();
}
