//! End-to-end proxy throughput: requests/second through a live
//! three-proxy loopback cluster per cooperation mode, with a zero-delay
//! origin so the protocol path itself is what's measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_cache::DocMeta;
use sc_proxy::client::ProxyClient;
use sc_proxy::{Cluster, ClusterConfig, Mode};
use std::time::Duration;

fn cluster_cfg(mode: Mode) -> ClusterConfig {
    ClusterConfig {
        proxies: 3,
        mode,
        cache_bytes: 32 << 20,
        expected_docs: 4_000,
        origin_delay: Duration::ZERO,
        icp_timeout_ms: 200,
        keepalive_ms: 0,
    }
}

fn bench_modes(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");

    let mut g = c.benchmark_group("proxy/request-path");
    g.sample_size(10);
    const BATCH: u64 = 200;
    g.throughput(Throughput::Elements(BATCH));

    for mode in [Mode::NoIcp, Mode::Icp, Mode::summary_cache_default()] {
        // One long-lived cluster + connection per mode; each iteration
        // drives a batch of cache-miss requests through the full path
        // (parse, cache, peering, origin fetch, store, respond).
        let cluster = rt.block_on(Cluster::start(&cluster_cfg(mode))).expect("cluster");
        let mut client = rt
            .block_on(ProxyClient::connect(
                cluster.daemons[0].http_addr,
                cluster.daemons[0].stats.clone(),
            ))
            .expect("connect");
        let mut next_doc: u64 = 0;
        g.bench_function(BenchmarkId::from_parameter(mode.label()), |b| {
            b.iter(|| {
                rt.block_on(async {
                    for _ in 0..BATCH {
                        let url = format!(
                            "http://server-{}.trace.invalid/doc/{next_doc}",
                            next_doc % 50
                        );
                        next_doc += 1;
                        let status = client
                            .get(&url, DocMeta { size: 2048, last_modified: 1 })
                            .await
                            .expect("request");
                        assert_eq!(status, 200);
                    }
                })
            })
        });
        cluster.shutdown();
    }
    g.finish();

    // The hit path, isolated: one hot document requested repeatedly.
    let mut g = c.benchmark_group("proxy/hit-path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(BATCH));
    let cluster = rt
        .block_on(Cluster::start(&cluster_cfg(Mode::NoIcp)))
        .expect("cluster");
    let mut client = rt
        .block_on(ProxyClient::connect(
            cluster.daemons[0].http_addr,
            cluster.daemons[0].stats.clone(),
        ))
        .expect("connect");
    let url = "http://server-0.trace.invalid/doc/hot";
    let meta = DocMeta { size: 2048, last_modified: 1 };
    rt.block_on(client.get(url, meta)).expect("warm");
    g.bench_function("local-hit", |b| {
        b.iter(|| {
            rt.block_on(async {
                for _ in 0..BATCH {
                    client.get(url, meta).await.expect("hit");
                }
            })
        })
    });
    cluster.shutdown();
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
