//! The tracked hot-path benchmark suite: every stage of the hash-once
//! probe pipeline, from the raw MD5 digest to end-to-end simnet request
//! throughput.
//!
//! Run via `scripts/bench.sh`, which sets `SC_BENCH_MS` for a real
//! measurement window and `SC_BENCH_JSON` to write the tracked
//! `BENCH_hotpath.json` at the repo root. Under plain `cargo test` the
//! suite runs with a tiny window and writes no file.

use sc_bloom::{BitVec, FilterConfig, Flip, HashSpec};
use sc_json::Value;
use sc_proxy::machine::{Event, VirtualTime};
use sc_proxy::router::Router;
use sc_proxy::shard::{owner_of, shard_of, Shard, ShardEvent};
use sc_proxy::simnet::{Sim, SimConfig};
use sc_util::bench::{black_box, Bench};
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use summary_cache_core::{PeerTable, ProxySummary, SummaryKind, UrlKey};
use std::time::Instant;

fn url(i: u32) -> Vec<u8> {
    format!("http://server-{}.trace.invalid/doc/{}", i / 12, i).into_bytes()
}

fn server(i: u32) -> Vec<u8> {
    format!("server-{}.trace.invalid", i / 12).into_bytes()
}

/// A peer table of `n` Bloom summaries, each holding 200 documents.
fn table_with_peers(n: u32) -> PeerTable {
    let mut table = PeerTable::new();
    for id in 0..n {
        let mut s = ProxySummary::with_expected_docs(SummaryKind::recommended(), 256);
        for j in 0..200u32 {
            let doc = id * 1_000 + j;
            s.insert(&url(doc), &server(doc));
        }
        s.publish();
        table.install(id, s.snapshot_published());
    }
    table
}

fn bench_md5(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    let key = url(123_456);
    let ns = b.bench("md5/url-digest", || {
        black_box(sc_md5::md5(black_box(&key)));
    });
    results.push(("md5/url-digest".into(), Value::Float(ns)));
}

/// Four-URL batch digest: four scalar `md5` calls vs one interleaved
/// `md5_x4` pass. The speedup row is what the ISSUE acceptance
/// criterion tracks (≥2.5× on 4-URL batches).
fn bench_md5_x4(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    let urls: Vec<Vec<u8>> = (0..4).map(|i| url(9_000 + i)).collect();
    let x1 = b.bench_min("md5/x1-4urls", 5, || {
        for u in &urls {
            black_box(sc_md5::md5(black_box(u)));
        }
    });
    results.push(("md5/x1-4urls".into(), Value::Float(x1)));
    let x4 = b.bench_min("md5/x4-4urls", 5, || {
        black_box(sc_md5::md5_x4([
            black_box(&urls[0]),
            black_box(&urls[1]),
            black_box(&urls[2]),
            black_box(&urls[3]),
        ]));
    });
    results.push(("md5/x4-4urls".into(), Value::Float(x4)));
    let speedup = x1 / x4;
    println!("hotpath/md5/x4-vs-x1 speedup: {speedup:.2}x on 4-URL batches");
    results.push(("md5/x4-vs-x1".into(), Value::Float(speedup)));
}

fn bench_indices(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    let key = url(123_456);
    let spec = sc_bloom::HashSpec::paper_default(4, 1 << 20).expect("valid spec");

    let ns = b.bench("indices/alloc", || {
        black_box(spec.indices(black_box(&key)));
    });
    results.push(("indices/alloc".into(), Value::Float(ns)));

    let mut buf = Vec::new();
    let ns = b.bench("indices/into", || {
        spec.indices_into(black_box(&key), &mut buf);
        black_box(&buf);
    });
    results.push(("indices/into".into(), Value::Float(ns)));

    let ukey = UrlKey::new(&key);
    let ns = b.bench("indices/urlkey-memoized", || {
        ukey.with_indices(&spec, |idx| {
            black_box(idx);
        });
    });
    results.push(("indices/urlkey-memoized".into(), Value::Float(ns)));
}

fn bench_probe_all(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    for peers in [4u32, 8, 16] {
        let table = table_with_peers(peers);
        let probe_url = url(3_007); // in peer 3's directory
        let probe_server = server(3_007);

        let ns = b.bench(&format!("probe-all/{peers}-peers/bytes"), || {
            black_box(table.probe_all(black_box(&probe_url), black_box(&probe_server)));
        });
        results.push((format!("probe-all/{peers}-peers/bytes"), Value::Float(ns)));

        // The key path includes key construction each iteration: this is
        // the full per-request cost, hashed once and probed everywhere.
        let ns = b.bench(&format!("probe-all/{peers}-peers/urlkey"), || {
            let uk = UrlKey::new(black_box(&probe_url));
            let sk = UrlKey::new(black_box(&probe_server));
            black_box(table.probe_all_key(&uk, &sk));
        });
        results.push((format!("probe-all/{peers}-peers/urlkey"), Value::Float(ns)));
    }
}

/// Per-stage attribution of the request path: where the non-probe
/// nanoseconds live. Each row isolates one stage against warm state —
/// digest (key construction, fresh vs reused scratch key), probe
/// (candidate selection over an 8-peer snapshot), shard-event (the
/// router's Stored/Purged directory routing), delta-publish (a
/// threshold-0 publish servicing every peer lane), and encode (one
/// 320-flip DIRUPDATE datagram). The rows don't sum to
/// `e2e/ns-per-request` — the simnet run adds scheduling and
/// decode — but they rank the targets and pin each one's trajectory.
fn bench_breakdown(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    struct NoDocs;
    impl sc_proxy::machine::DirectoryView for NoDocs {
        fn contains(&self, _url: &str) -> bool {
            false
        }
    }

    let probe_url = url(3_007);

    // digest: what every request pays before it can probe anything.
    let ns = b.bench("e2e/breakdown/digest-fresh", || {
        black_box(UrlKey::new(black_box(&probe_url)));
    });
    results.push(("e2e/breakdown/digest-fresh".into(), Value::Float(ns)));

    let mut scratch_key = UrlKey::new(&probe_url);
    let mut flip = 0u32;
    let ns = b.bench("e2e/breakdown/digest-reuse", || {
        flip ^= 1;
        let u = if flip == 0 { url(3_007) } else { url(3_008) };
        scratch_key.reset(black_box(&u));
        black_box(scratch_key.digest());
    });
    results.push(("e2e/breakdown/digest-reuse".into(), Value::Float(ns)));

    // probe: candidate selection against a published 8-peer snapshot
    // (the lock-free read path the daemon takes on every SC request).
    let fcfg = FilterConfig { bits: 1 << 14, hashes: 4, function_bits: 32 };
    let snapshot = sc_proxy::replica::ReplicaSnapshot::new(
        (0..8u32)
            .map(|p| {
                let mut f = sc_bloom::BloomFilter::new(fcfg);
                for j in 0..200u32 {
                    f.insert_key(&UrlKey::new(&url(p * 1_000 + j)));
                }
                (p, std::sync::Arc::new(f))
            })
            .collect(),
    );
    let ukey = UrlKey::new(&probe_url);
    let mut candidates = Vec::new();
    let ns = b.bench("e2e/breakdown/probe", || {
        snapshot.candidates_key_into(black_box(&ukey), &mut candidates);
        black_box(&candidates);
    });
    results.push(("e2e/breakdown/probe".into(), Value::Float(ns)));

    // shard-event: route a Stored/Purged pair through the router's
    // directory slices (no publish — the ledger policy never fires).
    let mk_router = |policy| {
        let mut summary = ProxySummary::with_expected_docs(SummaryKind::recommended(), 256);
        summary.set_generation(1);
        summary.publish();
        Router::new(7, (0..8u32).collect(), 50, 1, 1, Some((summary, policy)), VirtualTime::ZERO)
    };
    let mut router = mk_router(summary_cache_core::UpdatePolicy::EveryRequests(u64::MAX));
    let keys: Vec<UrlKey> = (0..256u32).map(|i| UrlKey::new(&url(i))).collect();
    let mut i = 0usize;
    let mut sink = Vec::new();
    let ns = b.bench("e2e/breakdown/shard-event", || {
        let key = &keys[i % keys.len()];
        i += 1;
        router.handle_into(VirtualTime::ZERO, Event::Stored { url: key, evicted: &[] }, &NoDocs, &mut sink);
        router.handle_into(VirtualTime::ZERO, Event::Purged { url: key }, &NoDocs, &mut sink);
        black_box(&sink);
        sink.clear();
    });
    results.push(("e2e/breakdown/shard-event".into(), Value::Float(ns / 2.0)));

    // delta-publish: a threshold-0 ledger publishes on every completed
    // request, servicing all 8 peer lanes immediately (keepalive 0 =
    // tickless flush). Cost per publish, flips included.
    let mut router = mk_router(summary_cache_core::UpdatePolicy::Threshold(0.0));
    let mut i = 0usize;
    let ns = b.bench("e2e/breakdown/delta-publish", || {
        let key = &keys[i % keys.len()];
        let stale = &keys[(i + 128) % keys.len()];
        i += 1;
        router.handle_into(
            VirtualTime::ZERO,
            Event::Stored { url: key, evicted: std::slice::from_ref(stale) },
            &NoDocs,
            &mut sink,
        );
        router.handle_into(VirtualTime::ZERO, Event::RequestDone, &NoDocs, &mut sink);
        black_box(&sink);
        sink.clear();
    });
    results.push(("e2e/breakdown/delta-publish".into(), Value::Float(ns)));

    // encode: one packet-sized (320-flip) DIRUPDATE datagram.
    let flips: Vec<Flip> = (0..320u32).map(|i| Flip::set(i * 7 % 4096)).collect();
    let msg = IcpMessage::DirUpdate {
        request_number: 1,
        sender: 7,
        update: DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 4096,
            generation: 1,
            seq: 9,
            content: DirContent::Flips(flips),
        },
    };
    let mut wire = Vec::new();
    let ns = b.bench("e2e/breakdown/encode", || {
        msg.encode_into(black_box(7), &mut wire).expect("encodes");
        black_box(&wire);
    });
    results.push(("e2e/breakdown/encode".into(), Value::Float(ns)));
}

/// End-to-end: a quiet (fault-free) deterministic simnet run, reported
/// as ns per client request. Exercises the whole stack — machine event
/// handling, hash-once summary maintenance, candidate probes, delta
/// publish fan-out, wire encode/decode.
fn bench_simnet(results: &mut Vec<(String, Value)>) {
    let cfg = SimConfig {
        proxies: 4,
        local_ops: 200,
        horizon_ms: 500,
        keepalive_ms: 50,
        loss: 0.0,
        duplicate: 0.0,
        delay_us: (200, 2_000),
        crashes: 0,
        partitions: 0,
        ..SimConfig::default()
    };
    let local_ops = cfg.local_ops as u64;
    // Fastest single run in the window: each run is ~1.5 ms of pure
    // compute, so one scheduler-quiet run measures the true cost,
    // while a whole-window mean absorbs every preemption on a shared
    // box. The tracked row gates CI, so it must be the stable
    // estimator.
    let budget = u128::from(sc_util::bench::window_ms().max(4));
    let started = Instant::now();
    let mut seed = 1u64;
    let mut best = f64::INFINITY;
    let mut runs = 0u64;
    while started.elapsed().as_millis() < budget || runs < 3 {
        let t = Instant::now();
        let report = Sim::new(cfg.clone(), seed).run();
        let ns = t.elapsed().as_nanos() as f64;
        assert!(report.converged, "quiet simnet must converge");
        black_box(report.events_processed);
        seed = seed.wrapping_add(1);
        best = best.min(ns);
        runs += 1;
    }
    let ns_per_run = best;
    println!("hotpath/e2e/simnet-run: fastest of {runs} runs: {ns_per_run:.0} ns");
    let ns_per_request = ns_per_run / local_ops as f64;
    println!(
        "hotpath/e2e/simnet ns-per-request: {ns_per_request:.0} ({local_ops} requests/run)"
    );
    results.push(("e2e/simnet-run".into(), Value::Float(ns_per_run)));
    results.push(("e2e/ns-per-request".into(), Value::Float(ns_per_request)));
}

/// One pre-routed event for a shard lane in the throughput model.
enum LaneEvent<'a> {
    Insert(&'a UrlKey),
    Apply { from: u32, update: &'a DirUpdate },
}

/// Shard-runtime scaling, measured with the critical-path lane model
/// (DESIGN.md §13): the full workload — local directory inserts plus
/// peer DIRUPDATE streams — is pre-routed into per-shard lanes exactly
/// as the router would route it (`shard_of` for keys, `owner_of` for
/// publishers), each lane is timed in isolation, and the control lane
/// (the router's publish OR-merge + diff) is timed once. The reported
/// cost per event is `(control + max(lane)) / events`: the wall-clock
/// a perfectly scheduled N-core run cannot beat, measurable on any
/// machine regardless of its actual core count.
fn bench_mt_throughput(results: &mut Vec<(String, Value)>) {
    const DOCS: usize = 8_192; // local inserts (load factor 8 below)
    const BITS: u32 = 65_536;
    // 512 inserts (6.25% directory churn) per publish merge — inside
    // the paper's 1–10% update-delay band (Section V-D).
    const PUBLISH_EVERY: usize = 512;
    const PEERS: u32 = 8; // remote publishers
    const DELTAS_PER_PEER: u32 = 256;
    const FLIPS_PER_DELTA: u32 = 320; // the paper's per-datagram batch
    const REPS: usize = 7;

    let spec = HashSpec::paper_default(4, BITS).expect("valid spec");
    let fcfg = FilterConfig { bits: BITS, hashes: 4, function_bits: 32 };
    let words = BITS as usize / 64;

    let keys: Vec<UrlKey> = (0..DOCS as u32).map(|i| UrlKey::new(&url(i))).collect();

    // Each peer publishes one install bitmap, then an in-sequence delta
    // stream with deterministic (xorshift) flip indices.
    let mut peer_updates: Vec<Vec<DirUpdate>> = Vec::new();
    for peer in 0..PEERS {
        let mut stream = vec![DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: BITS,
            generation: peer + 1,
            seq: 0,
            content: DirContent::Bitmap(vec![0u64; words]),
        }];
        let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(peer as u64 + 1);
        for seq in 1..=DELTAS_PER_PEER {
            let flips = (0..FLIPS_PER_DELTA)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    Flip::set((state % BITS as u64) as u32)
                })
                .collect();
            stream.push(DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: BITS,
                generation: peer + 1,
                seq,
                content: DirContent::Flips(flips),
            });
        }
        peer_updates.push(stream);
    }

    // The global schedule: deltas interleaved round-robin among the
    // inserts, so every lane sees a realistic mix.
    let applies = (PEERS * (DELTAS_PER_PEER + 1)) as usize;
    let every = DOCS / applies;
    let mut schedule: Vec<(Option<usize>, Option<(u32, usize)>)> = Vec::new();
    let mut next_delta = vec![0usize; PEERS as usize];
    let mut turn = 0u32;
    for i in 0..DOCS {
        schedule.push((Some(i), None));
        if i % every == every - 1 {
            for _ in 0..PEERS {
                let peer = turn % PEERS;
                turn += 1;
                let at = next_delta[peer as usize];
                if at < peer_updates[peer as usize].len() {
                    next_delta[peer as usize] = at + 1;
                    schedule.push((None, Some((peer, at))));
                    break;
                }
            }
        }
    }
    let total_events: u64 =
        schedule.iter().filter(|(a, b)| a.is_some() || b.is_some()).count() as u64;

    let mut per_shards: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // Pre-route, exactly as the router would.
        let mut lanes: Vec<Vec<LaneEvent<'_>>> = (0..shards).map(|_| Vec::new()).collect();
        for &(ins, app) in &schedule {
            if let Some(i) = ins {
                lanes[shard_of(&keys[i], shards)].push(LaneEvent::Insert(&keys[i]));
            }
            if let Some((peer, at)) = app {
                lanes[owner_of(peer, shards)].push(LaneEvent::Apply {
                    from: peer,
                    update: &peer_updates[peer as usize][at],
                });
            }
        }

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let mut shard_state: Vec<Shard> =
                (0..shards).map(|i| Shard::new(i, Some(fcfg))).collect();
            let mut out = Vec::new();

            // Data plane: each lane timed alone on its own shard.
            let mut slowest_lane = 0f64;
            for (i, lane) in lanes.iter().enumerate() {
                let t = Instant::now();
                for ev in lane {
                    match *ev {
                        LaneEvent::Insert(key) => {
                            shard_state[i].handle(ShardEvent::Insert { url: key }, &mut out);
                        }
                        // The clone stands in for per-datagram payload
                        // materialization; identical at every shard
                        // count, so ratios are unaffected.
                        LaneEvent::Apply { from, update } => {
                            shard_state[i].handle(
                                ShardEvent::Apply {
                                    now: VirtualTime::ZERO,
                                    from,
                                    spec,
                                    update: update.clone(),
                                },
                                &mut out,
                            );
                        }
                    }
                    out.clear();
                }
                slowest_lane = slowest_lane.max(t.elapsed().as_secs_f64());
            }

            // Control lane: the router's publish schedule — OR-merge
            // every slice, diff against the published baseline, build
            // the flip batch (router.rs `publish_update`, verbatim
            // costs), replayed against the settled shard state.
            let publishes = DOCS / PUBLISH_EVERY;
            let mut baseline = BitVec::new(BITS as usize);
            let t = Instant::now();
            for _ in 0..publishes {
                let mut merged = vec![0u64; words];
                for shard in &shard_state {
                    if let Some(slice) = shard.local_bits() {
                        for (acc, &w) in merged.iter_mut().zip(slice.as_words()) {
                            *acc |= w;
                        }
                    }
                }
                let merged = BitVec::from_words(BITS as usize, merged);
                let diff = baseline.diff_indices(&merged);
                let flips: Vec<Flip> = diff
                    .iter()
                    .map(|&i| {
                        if merged.get(i) {
                            Flip::set(i as u32)
                        } else {
                            Flip::clear(i as u32)
                        }
                    })
                    .collect();
                black_box(&flips);
                baseline = merged;
            }
            let control = t.elapsed().as_secs_f64();

            best = best.min(control + slowest_lane);
        }

        let ns_per_event = best * 1e9 / total_events as f64;
        println!("hotpath/e2e/mt-throughput shards-{shards}: {ns_per_event:.1} ns/event");
        results.push((
            format!("e2e/mt-throughput/shards-{shards}"),
            Value::Float(ns_per_event),
        ));
        per_shards.push((shards, ns_per_event));
    }
    let one = per_shards[0].1;
    let eight = per_shards.last().expect("ran 8-shard row").1;
    println!(
        "hotpath/e2e/mt-throughput scaling 1->8 shards: {:.2}x aggregate throughput",
        one / eight
    );
}

fn main() {
    let mut b = Bench::new("hotpath");
    let mut results: Vec<(String, Value)> = Vec::new();
    bench_md5(&mut b, &mut results);
    bench_md5_x4(&mut b, &mut results);
    bench_indices(&mut b, &mut results);
    bench_probe_all(&mut b, &mut results);
    bench_breakdown(&mut b, &mut results);
    bench_simnet(&mut results);
    bench_mt_throughput(&mut results);

    // Tracked JSON output: only when the driver asks for it
    // (`scripts/bench.sh` sets SC_BENCH_JSON to the repo-root path), so
    // `cargo test` runs never dirty the tree.
    if let Ok(path) = std::env::var("SC_BENCH_JSON") {
        let doc = Value::Object(vec![
            ("suite".into(), Value::Str("hotpath".into())),
            ("unit".into(), Value::Str("ns/op".into())),
            (
                "window_ms".into(),
                Value::UInt(sc_util::bench::window_ms()),
            ),
            ("results".into(), Value::Object(results)),
        ]);
        std::fs::write(&path, doc.to_pretty() + "\n").expect("write SC_BENCH_JSON");
        println!("wrote {path}");
    }
}
