//! The tracked hot-path benchmark suite: every stage of the hash-once
//! probe pipeline, from the raw MD5 digest to end-to-end simnet request
//! throughput.
//!
//! Run via `scripts/bench.sh`, which sets `SC_BENCH_MS` for a real
//! measurement window and `SC_BENCH_JSON` to write the tracked
//! `BENCH_hotpath.json` at the repo root. Under plain `cargo test` the
//! suite runs with a tiny window and writes no file.

use sc_json::Value;
use sc_proxy::simnet::{Sim, SimConfig};
use sc_util::bench::{black_box, Bench};
use summary_cache_core::{PeerTable, ProxySummary, SummaryKind, UrlKey};

fn url(i: u32) -> Vec<u8> {
    format!("http://server-{}.trace.invalid/doc/{}", i / 12, i).into_bytes()
}

fn server(i: u32) -> Vec<u8> {
    format!("server-{}.trace.invalid", i / 12).into_bytes()
}

/// A peer table of `n` Bloom summaries, each holding 200 documents.
fn table_with_peers(n: u32) -> PeerTable {
    let mut table = PeerTable::new();
    for id in 0..n {
        let mut s = ProxySummary::with_expected_docs(SummaryKind::recommended(), 256);
        for j in 0..200u32 {
            let doc = id * 1_000 + j;
            s.insert(&url(doc), &server(doc));
        }
        s.publish();
        table.install(id, s.snapshot_published());
    }
    table
}

fn bench_md5(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    let key = url(123_456);
    let ns = b.bench("md5/url-digest", || {
        black_box(sc_md5::md5(black_box(&key)));
    });
    results.push(("md5/url-digest".into(), Value::Float(ns)));
}

fn bench_indices(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    let key = url(123_456);
    let spec = sc_bloom::HashSpec::paper_default(4, 1 << 20).expect("valid spec");

    let ns = b.bench("indices/alloc", || {
        black_box(spec.indices(black_box(&key)));
    });
    results.push(("indices/alloc".into(), Value::Float(ns)));

    let mut buf = Vec::new();
    let ns = b.bench("indices/into", || {
        spec.indices_into(black_box(&key), &mut buf);
        black_box(&buf);
    });
    results.push(("indices/into".into(), Value::Float(ns)));

    let ukey = UrlKey::new(&key);
    let ns = b.bench("indices/urlkey-memoized", || {
        ukey.with_indices(&spec, |idx| {
            black_box(idx);
        });
    });
    results.push(("indices/urlkey-memoized".into(), Value::Float(ns)));
}

fn bench_probe_all(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    for peers in [4u32, 8, 16] {
        let table = table_with_peers(peers);
        let probe_url = url(3_007); // in peer 3's directory
        let probe_server = server(3_007);

        let ns = b.bench(&format!("probe-all/{peers}-peers/bytes"), || {
            black_box(table.probe_all(black_box(&probe_url), black_box(&probe_server)));
        });
        results.push((format!("probe-all/{peers}-peers/bytes"), Value::Float(ns)));

        // The key path includes key construction each iteration: this is
        // the full per-request cost, hashed once and probed everywhere.
        let ns = b.bench(&format!("probe-all/{peers}-peers/urlkey"), || {
            let uk = UrlKey::new(black_box(&probe_url));
            let sk = UrlKey::new(black_box(&probe_server));
            black_box(table.probe_all_key(&uk, &sk));
        });
        results.push((format!("probe-all/{peers}-peers/urlkey"), Value::Float(ns)));
    }
}

/// End-to-end: a quiet (fault-free) deterministic simnet run, reported
/// as ns per client request. Exercises the whole stack — machine event
/// handling, hash-once summary maintenance, candidate probes, delta
/// publish fan-out, wire encode/decode.
fn bench_simnet(b: &mut Bench, results: &mut Vec<(String, Value)>) {
    let cfg = SimConfig {
        proxies: 4,
        local_ops: 200,
        horizon_ms: 500,
        keepalive_ms: 50,
        loss: 0.0,
        duplicate: 0.0,
        delay_us: (200, 2_000),
        crashes: 0,
        partitions: 0,
        ..SimConfig::default()
    };
    let local_ops = cfg.local_ops as u64;
    let mut seed = 1u64;
    let ns_per_run = b.bench("e2e/simnet-run", || {
        let report = Sim::new(cfg.clone(), seed).run();
        assert!(report.converged, "quiet simnet must converge");
        black_box(report.events_processed);
        seed = seed.wrapping_add(1);
    });
    let ns_per_request = ns_per_run / local_ops as f64;
    println!(
        "hotpath/e2e/simnet ns-per-request: {ns_per_request:.0} ({local_ops} requests/run)"
    );
    results.push(("e2e/simnet-run".into(), Value::Float(ns_per_run)));
    results.push(("e2e/ns-per-request".into(), Value::Float(ns_per_request)));
}

fn main() {
    let mut b = Bench::new("hotpath");
    let mut results: Vec<(String, Value)> = Vec::new();
    bench_md5(&mut b, &mut results);
    bench_indices(&mut b, &mut results);
    bench_probe_all(&mut b, &mut results);
    bench_simnet(&mut b, &mut results);

    // Tracked JSON output: only when the driver asks for it
    // (`scripts/bench.sh` sets SC_BENCH_JSON to the repo-root path), so
    // `cargo test` runs never dirty the tree.
    if let Ok(path) = std::env::var("SC_BENCH_JSON") {
        let doc = Value::Object(vec![
            ("suite".into(), Value::Str("hotpath".into())),
            ("unit".into(), Value::Str("ns/op".into())),
            (
                "window_ms".into(),
                Value::UInt(sc_util::bench::window_ms()),
            ),
            ("results".into(), Value::Object(results)),
        ]);
        std::fs::write(&path, doc.to_pretty() + "\n").expect("write SC_BENCH_JSON");
        println!("wrote {path}");
    }
}
