//! Simulator throughput: requests/second through the scheme and
//! summary-cache simulators, so a full-scale figure run's cost is
//! predictable.

use sc_sim::{simulate_scheme, simulate_summary_cache, SchemeKind, SummaryCacheConfig};
use sc_trace::{GeneratorConfig, Trace, TraceGenerator, TraceStats};
use sc_util::bench::{black_box, Bench};
use summary_cache_core::{SummaryKind, UpdatePolicy};

fn small_trace() -> Trace {
    TraceGenerator::new(GeneratorConfig {
        requests: 20_000,
        clients: 64,
        documents: 8_000,
        groups: 4,
        ..Default::default()
    })
    .generate()
}

fn main() {
    let trace = small_trace();
    let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
    let n = trace.len() as u64;

    let mut b = Bench::new("sim");

    b.bench_throughput("schemes/simple-sharing", n, || {
        black_box(simulate_scheme(
            black_box(&trace),
            SchemeKind::SimpleSharing,
            budget,
        ));
    });
    b.bench_throughput("schemes/global", n, || {
        black_box(simulate_scheme(black_box(&trace), SchemeKind::Global, budget));
    });
    let bloom_cfg = SummaryCacheConfig {
        kind: SummaryKind::Bloom { load_factor: 8, hashes: 4 },
        policy: UpdatePolicy::Threshold(0.01),
        multicast_updates: false,
    };
    b.bench_throughput("summary/bloom-lf8", n, || {
        black_box(simulate_summary_cache(black_box(&trace), &bloom_cfg, budget));
    });
    let exact_cfg = SummaryCacheConfig {
        kind: SummaryKind::ExactDirectory,
        policy: UpdatePolicy::Threshold(0.01),
        multicast_updates: false,
    };
    b.bench_throughput("summary/exact-directory", n, || {
        black_box(simulate_summary_cache(black_box(&trace), &exact_cfg, budget));
    });

    b.bench("trace/generate-20k", || {
        black_box(small_trace());
    });
}
