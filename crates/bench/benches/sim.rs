//! Simulator throughput: requests/second through the scheme and
//! summary-cache simulators, so a full-scale figure run's cost is
//! predictable.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sc_sim::{simulate_scheme, simulate_summary_cache, SchemeKind, SummaryCacheConfig};
use sc_trace::{GeneratorConfig, Trace, TraceGenerator, TraceStats};
use summary_cache_core::{SummaryKind, UpdatePolicy};

fn small_trace() -> Trace {
    TraceGenerator::new(GeneratorConfig {
        requests: 20_000,
        clients: 64,
        documents: 8_000,
        groups: 4,
        ..Default::default()
    })
    .generate()
}

fn bench_sim(c: &mut Criterion) {
    let trace = small_trace();
    let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;

    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));

    g.bench_function("schemes/simple-sharing", |b| {
        b.iter(|| simulate_scheme(black_box(&trace), SchemeKind::SimpleSharing, budget))
    });
    g.bench_function("schemes/global", |b| {
        b.iter(|| simulate_scheme(black_box(&trace), SchemeKind::Global, budget))
    });
    g.bench_function("summary/bloom-lf8", |b| {
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: 8, hashes: 4 },
            policy: UpdatePolicy::Threshold(0.01),
            multicast_updates: false,
        };
        b.iter(|| simulate_summary_cache(black_box(&trace), &cfg, budget))
    });
    g.bench_function("summary/exact-directory", |b| {
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::Threshold(0.01),
            multicast_updates: false,
        };
        b.iter(|| simulate_summary_cache(black_box(&trace), &cfg, budget))
    });
    g.finish();

    c.bench_function("trace/generate-20k", |b| {
        b.iter(small_trace)
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
