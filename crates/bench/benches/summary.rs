//! Per-representation summary costs: the probe a proxy runs against
//! every peer summary on every local miss, and the publish that turns
//! pending changes into an update message.

use sc_util::bench::{black_box, Bench};
use summary_cache_core::{ProxySummary, SummaryKind};

fn keys(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("http://server-{}.trace.invalid/doc/{}", i / 12, i).into_bytes(),
        format!("server-{}.trace.invalid", i / 12).into_bytes(),
    )
}

fn kinds() -> Vec<SummaryKind> {
    vec![
        SummaryKind::ExactDirectory,
        SummaryKind::ServerName,
        SummaryKind::Bloom { load_factor: 8, hashes: 4 },
        SummaryKind::Bloom { load_factor: 16, hashes: 4 },
    ]
}

fn loaded(kind: SummaryKind, docs: u32) -> ProxySummary {
    let mut s = ProxySummary::with_expected_docs(kind, docs as u64);
    for i in 0..docs {
        let (u, srv) = keys(i);
        s.insert(&u, &srv);
    }
    s.publish();
    s
}

fn main() {
    let mut b = Bench::new("summary");

    for kind in kinds() {
        let s = loaded(kind, 20_000);
        let mut i = 0u32;
        b.bench(&format!("probe/{}", kind.label()), || {
            let (u, srv) = keys(i % 40_000);
            i = i.wrapping_add(1);
            black_box(s.probe_published(black_box(&u), black_box(&srv)));
        });
    }

    for kind in kinds() {
        let mut s = loaded(kind, 20_000);
        let mut i = 100_000u32;
        b.bench(&format!("insert+remove/{}", kind.label()), || {
            let (u, srv) = keys(i);
            s.insert(&u, &srv);
            s.remove(&u, &srv);
            i = i.wrapping_add(1);
        });
    }

    for kind in kinds() {
        let mut s = loaded(kind, 20_000);
        let mut i = 500_000u32;
        b.bench(&format!("publish-1%churn/{}", kind.label()), || {
            for _ in 0..200 {
                let (u, srv) = keys(i);
                s.insert(&u, &srv);
                i = i.wrapping_add(1);
            }
            black_box(s.publish());
        });
    }
}
