//! Per-representation summary costs: the probe a proxy runs against
//! every peer summary on every local miss, and the publish that turns
//! pending changes into an update message.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use summary_cache_core::{ProxySummary, SummaryKind};

fn keys(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("http://server-{}.trace.invalid/doc/{}", i / 12, i).into_bytes(),
        format!("server-{}.trace.invalid", i / 12).into_bytes(),
    )
}

fn kinds() -> Vec<SummaryKind> {
    vec![
        SummaryKind::ExactDirectory,
        SummaryKind::ServerName,
        SummaryKind::Bloom { load_factor: 8, hashes: 4 },
        SummaryKind::Bloom { load_factor: 16, hashes: 4 },
    ]
}

fn loaded(kind: SummaryKind, docs: u32) -> ProxySummary {
    let mut s = ProxySummary::with_expected_docs(kind, docs as u64);
    for i in 0..docs {
        let (u, srv) = keys(i);
        s.insert(&u, &srv);
    }
    s.publish();
    s
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary/probe");
    for kind in kinds() {
        let s = loaded(kind, 20_000);
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &s, |b, s| {
            let mut i = 0u32;
            b.iter(|| {
                let (u, srv) = keys(i % 40_000);
                i = i.wrapping_add(1);
                s.probe_published(black_box(&u), black_box(&srv))
            })
        });
    }
    g.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary/insert+remove");
    for kind in kinds() {
        g.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut s = loaded(kind, 20_000);
            let mut i = 100_000u32;
            b.iter(|| {
                let (u, srv) = keys(i);
                s.insert(&u, &srv);
                s.remove(&u, &srv);
                i = i.wrapping_add(1);
            })
        });
    }
    g.finish();
}

fn bench_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary/publish-1%churn");
    for kind in kinds() {
        g.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut s = loaded(kind, 20_000);
            let mut i = 500_000u32;
            b.iter(|| {
                for _ in 0..200 {
                    let (u, srv) = keys(i);
                    s.insert(&u, &srv);
                    i = i.wrapping_add(1);
                }
                black_box(s.publish())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_probe, bench_maintenance, bench_publish);
criterion_main!(benches);
