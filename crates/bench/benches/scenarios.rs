//! Per-scenario throughput + good-ruler rows: every canned adversarial
//! scenario (flash crowd, diurnal drift, peer churn, false-hit storm,
//! two-level hierarchy) replayed once on the deterministic simnet,
//! reporting wall-clock ns per simulated request next to the ruler's
//! quality dimensions (hit ratio, false-hit ratio, virtual p99).
//!
//! Like the scaleout suite this is a fixed-work measurement — one
//! seeded run per scenario — so it ignores `SC_BENCH_MS`. Run via
//! `scripts/bench.sh`, which sets `SC_BENCH_JSON` to write the tracked
//! `BENCH_scenarios.json` at the repo root. The ruler numbers are
//! deterministic; only the ns/request timing varies between hosts.

use sc_json::Value;
use sc_proxy::simnet::{run_scenario, ScenarioConfig, SimConfig};
use sc_trace::scenario;
use std::time::Instant;

const SEED: u64 = 0xBE7C;

/// Every knob literal: the bench must measure the same schedule no
/// matter what `SC_SIM_*` is set in the environment.
fn bench_cfg() -> ScenarioConfig {
    ScenarioConfig {
        sim: SimConfig {
            proxies: 8,
            local_ops: 0,
            horizon_ms: 2_000,
            keepalive_ms: 50,
            cache_docs: 48,
            expected_docs: 64,
            load_factor: 8,
            hashes: 4,
            loss: 0.12,
            duplicate: 0.08,
            delay_us: (200, 40_000),
            crashes: 2,
            partitions: 2,
            settle_ticks: 400,
            shards: 1,
            fanout_slots: 1,
            initial_seq: 0,
        },
        windows: 8,
        origin_rtt_us: 120_000,
        local_service_us: 200,
    }
}

fn main() {
    let mut results: Vec<(String, Value)> = Vec::new();
    for name in scenario::scenario_names() {
        let s = scenario::by_name(name, 8, SEED).expect("canned scenario name");
        let start = Instant::now();
        let out = run_scenario(bench_cfg(), SEED, &s);
        let elapsed = start.elapsed();
        let r = &out.report;
        assert!(
            r.converged,
            "{name} must reconverge under the bench fault plan"
        );
        let ns_per_req = elapsed.as_nanos() as f64 / r.requests.max(1) as f64;
        println!(
            "scenarios/{name}: {ns_per_req:.0} ns/request, hit {:.1}%, false-hit {:.2}%, p99 {} us",
            100.0 * r.hit_ratio(),
            100.0 * r.false_hit_ratio(),
            r.latency_p99_us
        );
        results.push((format!("{name}/ns-per-request"), Value::Float(ns_per_req)));
        results.push((format!("{name}/hit-ratio"), Value::Float(r.hit_ratio())));
        results.push((
            format!("{name}/false-hit-ratio"),
            Value::Float(r.false_hit_ratio()),
        ));
        results.push((format!("{name}/requests"), Value::UInt(r.requests)));
        results.push((
            format!("{name}/latency-p99-us"),
            Value::UInt(r.latency_p99_us),
        ));
        results.push((
            format!("{name}/update-datagrams"),
            Value::UInt(r.datagrams_by_op[0].1 + r.datagrams_by_op[1].1),
        ));
    }

    // Tracked JSON output: only when the driver asks for it
    // (`scripts/bench.sh` sets SC_BENCH_JSON to the repo-root path), so
    // `cargo test` runs never dirty the tree.
    if let Ok(path) = std::env::var("SC_BENCH_JSON") {
        let doc = Value::Object(vec![
            ("suite".into(), Value::Str("scenarios".into())),
            ("results".into(), Value::Object(results)),
        ]);
        std::fs::write(&path, doc.to_pretty() + "\n").expect("write SC_BENCH_JSON");
        println!("wrote {path}");
    }
}
