//! Bloom / counting-Bloom operation costs, including the ablations
//! DESIGN.md calls out: probe cost vs hash count k, and counting-filter
//! maintenance vs the plain filter.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_bloom::{BloomFilter, CountingBloomFilter, FilterConfig};

fn url(i: u32) -> Vec<u8> {
    format!("http://server-{}.trace.invalid/doc/{}", i / 12, i).into_bytes()
}

fn bench_ops(c: &mut Criterion) {
    let cfg = FilterConfig::with_load_factor(100_000, 8, 4);

    c.bench_function("bloom/insert", |b| {
        let mut f = BloomFilter::new(cfg);
        let mut i = 0u32;
        b.iter(|| {
            f.insert(black_box(&url(i)));
            i = i.wrapping_add(1);
        })
    });

    c.bench_function("bloom/query-hit", |b| {
        let mut f = BloomFilter::new(cfg);
        for i in 0..100_000 {
            f.insert(&url(i));
        }
        let mut i = 0u32;
        b.iter(|| {
            let hit = f.contains(black_box(&url(i % 100_000)));
            i = i.wrapping_add(1);
            hit
        })
    });

    c.bench_function("bloom/query-miss", |b| {
        let mut f = BloomFilter::new(cfg);
        for i in 0..100_000 {
            f.insert(&url(i));
        }
        let mut i = 1_000_000u32;
        b.iter(|| {
            let hit = f.contains(black_box(&url(i)));
            i = i.wrapping_add(1);
            hit
        })
    });

    c.bench_function("counting/insert+remove", |b| {
        let mut f = CountingBloomFilter::new(cfg);
        let mut i = 0u32;
        b.iter(|| {
            let u = url(i);
            f.insert(black_box(&u));
            f.remove(black_box(&u));
            i = i.wrapping_add(1);
        })
    });
}

/// Ablation: probe cost as a function of k at a fixed load factor.
fn bench_k_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom/probe-vs-k");
    for k in [2u16, 4, 6, 8, 12] {
        let cfg = FilterConfig {
            bits: 1 << 20,
            hashes: k,
            function_bits: 32,
        };
        let mut f = BloomFilter::new(cfg);
        for i in 0..50_000 {
            f.insert(&url(i));
        }
        g.bench_with_input(BenchmarkId::from_parameter(k), &f, |b, f| {
            let mut i = 0u32;
            b.iter(|| {
                let hit = f.contains(black_box(&url(i)));
                i = i.wrapping_add(1);
                hit
            })
        });
    }
    g.finish();
}

/// Delta-update encoding: diffing a published baseline against the live
/// bits — the per-publish cost of the protocol.
fn bench_delta(c: &mut Criterion) {
    let cfg = FilterConfig::with_load_factor(100_000, 8, 4);
    c.bench_function("bloom/delta-diff-1%churn", |b| {
        let mut f = CountingBloomFilter::new(cfg);
        for i in 0..100_000 {
            f.insert(&url(i));
        }
        let baseline = f.bits().clone();
        // 1% churn.
        for i in 0..1_000 {
            f.remove(&url(i));
            f.insert(&url(200_000 + i));
        }
        b.iter(|| baseline.diff_indices(black_box(f.bits())))
    });
}

/// MD5 vs Rabin hash family (the paper's Section V-D alternative) and
/// the Golomb-coded bitmap transmission.
fn bench_alternatives(c: &mut Criterion) {
    let key = b"http://server-123.trace.invalid/doc/456789";

    let mut g = c.benchmark_group("hash-family/4-indices");
    let md5_spec = sc_bloom::HashSpec::paper_default(4, 1 << 20).unwrap();
    g.bench_function("md5", |b| b.iter(|| md5_spec.indices(black_box(key))));
    let rabin = sc_bloom::rabin::RabinFamily::new(4, 1 << 20);
    g.bench_function("rabin", |b| b.iter(|| rabin.indices(black_box(key))));
    g.finish();

    // Compression of a realistic published bitmap (fill ~0.22, the k=4
    // load-factor-16 operating point).
    let mut f = BloomFilter::new(FilterConfig::with_load_factor(50_000, 16, 4));
    for i in 0..50_000 {
        f.insert(&url(i));
    }
    let mut g = c.benchmark_group("bitmap-transmission");
    g.bench_function("golomb-compress", |b| {
        b.iter(|| sc_bloom::compress(black_box(f.bits())))
    });
    let coded = sc_bloom::compress(f.bits());
    g.bench_function("golomb-decompress", |b| {
        b.iter(|| sc_bloom::decompress(black_box(&coded)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_ops, bench_k_sweep, bench_delta, bench_alternatives);
criterion_main!(benches);
