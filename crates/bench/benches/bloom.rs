//! Bloom / counting-Bloom operation costs, including the ablations
//! DESIGN.md calls out: probe cost vs hash count k, and counting-filter
//! maintenance vs the plain filter.

use sc_bloom::{BloomFilter, CountingBloomFilter, FilterConfig};
use sc_util::bench::{black_box, Bench};

fn url(i: u32) -> Vec<u8> {
    format!("http://server-{}.trace.invalid/doc/{}", i / 12, i).into_bytes()
}

fn bench_ops(b: &mut Bench) {
    let cfg = FilterConfig::with_load_factor(100_000, 8, 4);

    {
        let mut f = BloomFilter::new(cfg);
        let mut i = 0u32;
        b.bench("insert", || {
            f.insert(black_box(&url(i)));
            i = i.wrapping_add(1);
        });
    }

    {
        let mut f = BloomFilter::new(cfg);
        for i in 0..100_000 {
            f.insert(&url(i));
        }
        let mut i = 0u32;
        b.bench("query-hit", || {
            black_box(f.contains(black_box(&url(i % 100_000))));
            i = i.wrapping_add(1);
        });
        let mut i = 1_000_000u32;
        b.bench("query-miss", || {
            black_box(f.contains(black_box(&url(i))));
            i = i.wrapping_add(1);
        });
    }

    {
        let mut f = CountingBloomFilter::new(cfg);
        let mut i = 0u32;
        b.bench("counting/insert+remove", || {
            let u = url(i);
            f.insert(black_box(&u));
            f.remove(black_box(&u));
            i = i.wrapping_add(1);
        });
    }
}

/// Ablation: probe cost as a function of k at a fixed load factor.
fn bench_k_sweep(b: &mut Bench) {
    for k in [2u16, 4, 6, 8, 12] {
        let cfg = FilterConfig {
            bits: 1 << 20,
            hashes: k,
            function_bits: 32,
        };
        let mut f = BloomFilter::new(cfg);
        for i in 0..50_000 {
            f.insert(&url(i));
        }
        let mut i = 0u32;
        b.bench(&format!("probe-vs-k/{k}"), || {
            black_box(f.contains(black_box(&url(i))));
            i = i.wrapping_add(1);
        });
    }
}

/// Delta-update encoding: diffing a published baseline against the live
/// bits — the per-publish cost of the protocol.
fn bench_delta(b: &mut Bench) {
    let cfg = FilterConfig::with_load_factor(100_000, 8, 4);
    let mut f = CountingBloomFilter::new(cfg);
    for i in 0..100_000 {
        f.insert(&url(i));
    }
    let baseline = f.bits().clone();
    // 1% churn.
    for i in 0..1_000 {
        f.remove(&url(i));
        f.insert(&url(200_000 + i));
    }
    b.bench("delta-diff-1%churn", || {
        black_box(baseline.diff_indices(black_box(f.bits())));
    });
}

/// MD5 vs Rabin hash family (the paper's Section V-D alternative) and
/// the Golomb-coded bitmap transmission.
fn bench_alternatives(b: &mut Bench) {
    let key = b"http://server-123.trace.invalid/doc/456789";

    let md5_spec = sc_bloom::HashSpec::paper_default(4, 1 << 20).unwrap();
    b.bench("hash-family/4-indices/md5", || {
        black_box(md5_spec.indices(black_box(key)));
    });
    let rabin = sc_bloom::rabin::RabinFamily::new(4, 1 << 20);
    b.bench("hash-family/4-indices/rabin", || {
        black_box(rabin.indices(black_box(key)));
    });

    // Compression of a realistic published bitmap (fill ~0.22, the k=4
    // load-factor-16 operating point).
    let mut f = BloomFilter::new(FilterConfig::with_load_factor(50_000, 16, 4));
    for i in 0..50_000 {
        f.insert(&url(i));
    }
    b.bench("bitmap/golomb-compress", || {
        black_box(sc_bloom::compress(black_box(f.bits())));
    });
    let coded = sc_bloom::compress(f.bits());
    b.bench("bitmap/golomb-decompress", || {
        black_box(sc_bloom::decompress(black_box(&coded)).unwrap());
    });
}

fn main() {
    let mut b = Bench::new("bloom");
    bench_ops(&mut b);
    bench_k_sweep(&mut b);
    bench_delta(&mut b);
    bench_alternatives(&mut b);
}
