//! Table I — statistics about the traces.
//!
//! The paper's Table I lists, per trace: duration, number of requests,
//! infinite cache size, number of clients, and the maximum (infinite-
//! cache) hit and byte-hit ratios. The originals are proprietary; these
//! are the calibrated synthetic stand-ins (see DESIGN.md §3), so the
//! *relationships* — group counts, relative scale, hit-ratio ceilings
//! in the 40–80 % band the paper reports — are the reproduction target.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_trace::TraceStats;

struct Row {
    trace: String,
    groups: u32,
    duration_hours: f64,
    requests: usize,
    clients: usize,
    unique_documents: usize,
    infinite_cache_mb: f64,
    max_hit_ratio: f64,
    max_byte_hit_ratio: f64,
}

sc_json::json_struct!(Row {
    trace,
    groups,
    duration_hours,
    requests,
    clients,
    unique_documents,
    infinite_cache_mb,
    max_hit_ratio,
    max_byte_hit_ratio
});

fn main() {
    println!("Table I: statistics about the (synthetic stand-in) traces");
    let header = format!(
        "{:>10} {:>7} {:>10} {:>10} {:>9} {:>10} {:>12} {:>9} {:>9}",
        "trace", "groups", "hours", "requests", "clients", "uniq docs", "inf cache", "max hit", "max byte"
    );
    println!("{header}");
    rule(&header);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let s = TraceStats::compute(&trace);
        let row = Row {
            trace: s.name.clone(),
            groups: trace.groups,
            duration_hours: s.duration_ms as f64 / 3_600_000.0,
            requests: s.requests,
            clients: s.clients,
            unique_documents: s.unique_documents,
            infinite_cache_mb: s.infinite_cache_bytes as f64 / (1024.0 * 1024.0),
            max_hit_ratio: s.max_hit_ratio,
            max_byte_hit_ratio: s.max_byte_hit_ratio,
        };
        println!(
            "{:>10} {:>7} {:>10.1} {:>10} {:>9} {:>10} {:>9.0} MB {:>9} {:>9}",
            row.trace,
            row.groups,
            row.duration_hours,
            row.requests,
            row.clients,
            row.unique_documents,
            row.infinite_cache_mb,
            pct(row.max_hit_ratio),
            pct(row.max_byte_hit_ratio),
        );
        rows.push(row);
    }
    println!();
    println!("paper: DEC 7 days / UCB 12 days / UPisa 3 months / Questnet 15 days / NLANR 1 day;");
    println!("paper: max hit ratios cluster in the 40-80% band; infinite caches are GBs.");
    write_results("table1", &rows);
}
