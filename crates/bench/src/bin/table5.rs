//! Table V — trace-replay experiment 4 (Section VII): the same UPisa
//! prefix as Table IV, but requests are dealt **round-robin** to the 80
//! driver tasks regardless of which trace client issued them. This
//! breaks the client↔proxy binding but preserves the global order and
//! balances load across the proxies.
//!
//! Paper shape: same story as Table IV — SC-ICP ≈ no-ICP on overhead,
//! ≈ ICP on hit ratio — with better load balance and therefore slightly
//! different absolute hit ratios.

use sc_bench::replay::{print_table, replay_trace, run_mode, sc_prototype_mode};
use sc_bench::write_results;
use sc_proxy::{Mode, ReplayMode};

fn main() {
    let trace = replay_trace();
    println!(
        "Table V: UPisa replay, experiment 4 (round-robin dispatch), {} requests, 4 proxies",
        trace.len()
    );
    let mut reports = Vec::new();
    for mode in [Mode::NoIcp, Mode::Icp, sc_prototype_mode()] {
        reports.push(run_mode(mode, &trace, ReplayMode::RoundRobin));
    }
    print_table(&reports);
    println!();
    println!("paper: same ordering as Table IV under load-balanced dispatch;");
    println!("paper: SC-ICP keeps the remote hits while shedding ICP's UDP storm.");
    write_results("table5", &reports);
}
