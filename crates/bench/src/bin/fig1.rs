//! Fig. 1 — cache hit ratios under different cooperative caching
//! schemes, at cache sizes of 0.5 %, 5 %, 10 % and 20 % of each trace's
//! infinite cache size.
//!
//! The paper's reading of this figure (Section III): every sharing
//! scheme beats no-sharing decisively; simple (ICP-style) sharing is as
//! good as single-copy and the global cache; a global cache 10 %
//! smaller changes almost nothing.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_sim::{simulate_scheme, SchemeKind};
use sc_trace::TraceStats;

struct Row {
    trace: String,
    cache_fraction: f64,
    scheme: String,
    total_hit_ratio: f64,
    byte_hit_ratio: f64,
}

sc_json::json_struct!(Row { trace, cache_fraction, scheme, total_hit_ratio, byte_hit_ratio });

fn main() {
    println!("Fig. 1: hit ratios under cooperative caching schemes");
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        println!("\n[{}] (infinite cache {} MB)", p.name, infinite >> 20);
        let header = format!(
            "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "cache", "no-sharing", "simple", "single-copy", "global", "global-90%"
        );
        println!("{header}");
        rule(&header);
        let mut byte_lines = Vec::new();
        for frac in [0.005, 0.05, 0.10, 0.20] {
            let budget = ((infinite as f64) * frac) as u64;
            let mut line = format!("{:>7.1}%", frac * 100.0);
            let mut byte_line = format!("{:>7.1}%", frac * 100.0);
            for scheme in SchemeKind::all() {
                let m = simulate_scheme(&trace, scheme, budget);
                let r = m.rates();
                line.push_str(&format!(" {:>12}", pct(r.total_hit_ratio)));
                byte_line.push_str(&format!(" {:>12}", pct(r.byte_hit_ratio)));
                rows.push(Row {
                    trace: p.name.to_string(),
                    cache_fraction: frac,
                    scheme: scheme.label().to_string(),
                    total_hit_ratio: r.total_hit_ratio,
                    byte_hit_ratio: r.byte_hit_ratio,
                });
            }
            println!("{line}");
            byte_lines.push(byte_line);
        }
        // "The results on byte hit ratios are very similar, and we omit
        // them due to space constraints" — we have the space:
        println!("  byte hit ratios:");
        for l in byte_lines {
            println!("{l}");
        }
    }
    println!();
    println!("paper: sharing >> no-sharing at every size; simple ≈ single-copy ≈ global;");
    println!("paper: global-90% within a whisker of global (duplicate waste is minor).");
    write_results("fig1", &rows);
}
