//! Table III — storage requirement of the summary representations, as a
//! percentage of the proxy cache size.
//!
//! The paper's reading: exact-directory costs whole percents of the
//! cache (too much when multiplied by many peers); server-name is ~10×
//! cheaper but useless (Figs. 6–7); Bloom filters at load factors 8/16/32
//! cost 0.1–0.5 % and win outright.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_sim::{simulate_summary_cache, SummaryCacheConfig};
use sc_trace::TraceStats;
use summary_cache_core::{SummaryKind, UpdatePolicy};

struct Row {
    trace: String,
    representation: String,
    peer_summaries_bytes: f64,
    own_summary_bytes: f64,
    fraction_of_cache: f64,
}

sc_json::json_struct!(Row {
    trace,
    representation,
    peer_summaries_bytes,
    own_summary_bytes,
    fraction_of_cache
});

fn kinds() -> Vec<SummaryKind> {
    vec![
        SummaryKind::ExactDirectory,
        SummaryKind::ServerName,
        SummaryKind::Bloom { load_factor: 8, hashes: 4 },
        SummaryKind::Bloom { load_factor: 16, hashes: 4 },
        SummaryKind::Bloom { load_factor: 32, hashes: 4 },
    ]
}

fn main() {
    println!("Table III: summary storage as % of proxy cache size (all peers' summaries)");
    let header = format!(
        "{:>10} {:>18} {:>14} {:>12} {:>10}",
        "trace", "representation", "peer summaries", "own summary", "% of cache"
    );
    println!("{header}");
    rule(&header);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        for kind in kinds() {
            let cfg = SummaryCacheConfig {
                kind,
                policy: UpdatePolicy::Threshold(0.01),
                multicast_updates: false,
            };
            let r = simulate_summary_cache(&trace, &cfg, budget);
            let row = Row {
                trace: p.name.to_string(),
                representation: kind.label(),
                peer_summaries_bytes: r.avg_peer_summary_bytes,
                own_summary_bytes: r.avg_own_summary_bytes,
                fraction_of_cache: r.summary_memory_fraction_of_cache,
            };
            println!(
                "{:>10} {:>18} {:>14} {:>12} {:>10}",
                row.trace,
                row.representation,
                sc_bench::human_bytes(row.peer_summaries_bytes),
                sc_bench::human_bytes(row.own_summary_bytes),
                pct(row.fraction_of_cache),
            );
            rows.push(row);
        }
        println!();
    }
    println!("paper: exact-directory ~ percents of cache; bloom-8 ~ 0.1-0.2%; ordering");
    println!("paper: exact > server-name > bloom-32 > bloom-16 > bloom-8 on every trace.");
    write_results("table3", &rows);
}
