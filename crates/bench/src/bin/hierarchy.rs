//! Extension experiment — summary cache inside a two-level hierarchy
//! (Section VIII: "summary cache enhanced ICP can be used between
//! parent and child proxies. … Though we did not simulate the
//! scenario"). We simulate it: Questnet's real topology (12 child
//! proxies behind a regional parent), with and without sibling
//! summary-cache sharing, on every profile.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_sim::{simulate_hierarchy, HierarchyConfig, SummaryCacheConfig};
use sc_trace::TraceStats;
use summary_cache_core::{SummaryKind, UpdatePolicy};

struct Row {
    trace: String,
    sibling_sharing: bool,
    child_hit: f64,
    sibling_hit: f64,
    parent_hit: f64,
    hierarchy_hit: f64,
    parent_load: f64,
    sibling_queries_per_request: f64,
}

sc_json::json_struct!(Row {
    trace,
    sibling_sharing,
    child_hit,
    sibling_hit,
    parent_hit,
    hierarchy_hit,
    parent_load,
    sibling_queries_per_request
});

fn main() {
    println!("Hierarchy extension: child tier (+/- sibling summary cache) behind one parent");
    let header = format!(
        "{:>10} {:>9} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "trace", "sharing", "child", "sibling", "parent", "total", "parent load", "queries/r"
    );
    println!("{header}");
    rule(&header);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let infinite = TraceStats::compute(&trace).infinite_cache_bytes;
        for sharing in [false, true] {
            let cfg = HierarchyConfig {
                sibling_sharing: sharing.then_some(SummaryCacheConfig {
                    kind: SummaryKind::Bloom {
                        load_factor: 16,
                        hashes: 4,
                    },
                    policy: UpdatePolicy::EveryRequests(200),
                    multicast_updates: false,
                }),
                child_tier_bytes: infinite / 10,
                parent_bytes: infinite / 10,
            };
            let r = simulate_hierarchy(&trace, &cfg);
            let n = r.requests.max(1) as f64;
            let row = Row {
                trace: p.name.to_string(),
                sibling_sharing: sharing,
                child_hit: r.child_hits as f64 / n,
                sibling_hit: r.sibling_hits as f64 / n,
                parent_hit: r.parent_hits as f64 / n,
                hierarchy_hit: r.hierarchy_hit_ratio(),
                parent_load: r.parent_load(),
                sibling_queries_per_request: r.sibling_queries as f64 / n,
            };
            println!(
                "{:>10} {:>9} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10.4}",
                row.trace,
                if sharing { "SC-ICP" } else { "none" },
                pct(row.child_hit),
                pct(row.sibling_hit),
                pct(row.parent_hit),
                pct(row.hierarchy_hit),
                pct(row.parent_load),
                row.sibling_queries_per_request,
            );
            rows.push(row);
        }
    }
    println!();
    println!("reading: sibling sharing converts parent hits into cheaper sibling hits,");
    println!("cutting the parent's request load while holding the hierarchy hit ratio.");
    write_results("hierarchy", &rows);
}
