//! Table IV — trace-replay experiment 3 (Section VII): the first chunk
//! of the UPisa trace replayed by 80 client tasks on 4 proxies, with
//! the client→proxy binding preserved (each client's requests all go to
//! its own proxy, in order).
//!
//! Paper shape: SC-ICP cuts UDP traffic ~50× vs ICP, matches ICP's
//! total hit ratio within a point, and its client latency lands at or
//! below no-ICP's (remote hits beat origin fetches).

use sc_bench::replay::{print_table, replay_trace, run_mode, sc_prototype_mode};
use sc_bench::write_results;
use sc_proxy::{Mode, ReplayMode};

fn main() {
    let trace = replay_trace();
    println!(
        "Table IV: UPisa replay, experiment 3 (per-client binding), {} requests, 4 proxies",
        trace.len()
    );
    let mut reports = Vec::new();
    for mode in [Mode::NoIcp, Mode::Icp, sc_prototype_mode()] {
        reports.push(run_mode(mode, &trace, ReplayMode::PerClient));
    }
    print_table(&reports);
    println!();
    println!("paper: SC-ICP matches ICP's hit ratio within ~1 point, cuts UDP ~50x,");
    println!("paper: and lowers client latency slightly below no-ICP (remote hits).");
    write_results("table4", &reports);
}
