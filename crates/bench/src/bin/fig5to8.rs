//! Figs. 5–8 — the summary-representation comparison, one simulation
//! pass per (trace, representation) at the 1 % update threshold and a
//! cache of 10 % of infinite:
//!
//! * Fig. 5: total cache hit ratio;
//! * Fig. 6: false-hit ratio (log scale in the paper);
//! * Fig. 7: inter-proxy network messages per request (updates +
//!   queries), with the ICP baseline;
//! * Fig. 8: inter-proxy message **bytes** per request under the
//!   Section V-D size model, with the ICP baseline.
//!
//! Paper shape: all representations hit within a hair of exact-
//! directory (server-name even a touch higher — its false hits mask
//! false misses); false hits order server-name ≫ bloom-8 > bloom-16 >
//! bloom-32 > exact; messages collapse vs ICP; bytes drop >50 %.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_sim::{simulate_summary_cache, SummaryCacheConfig};
use sc_trace::TraceStats;
use summary_cache_core::{SummaryKind, UpdatePolicy};

struct Row {
    trace: String,
    representation: String,
    total_hit_ratio: f64,
    false_hit_ratio: f64,
    messages_per_request: f64,
    bytes_per_request: f64,
    icp_messages_per_request: f64,
    icp_bytes_per_request: f64,
    message_reduction_factor: f64,
    byte_reduction: f64,
}

sc_json::json_struct!(Row {
    trace,
    representation,
    total_hit_ratio,
    false_hit_ratio,
    messages_per_request,
    bytes_per_request,
    icp_messages_per_request,
    icp_bytes_per_request,
    message_reduction_factor,
    byte_reduction
});

fn kinds() -> Vec<SummaryKind> {
    vec![
        SummaryKind::ExactDirectory,
        SummaryKind::ServerName,
        SummaryKind::Bloom { load_factor: 8, hashes: 4 },
        SummaryKind::Bloom { load_factor: 16, hashes: 4 },
        SummaryKind::Bloom { load_factor: 32, hashes: 4 },
    ]
}

fn main() {
    println!("Figs. 5-8: summary representations at 1% threshold, cache = 10% infinite");
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        println!("\n[{}]", p.name);
        let header = format!(
            "{:>18} {:>9} {:>10} {:>10} {:>11} {:>9} {:>9}",
            "representation", "hit", "false-hit", "msgs/req", "bytes/req", "msg x", "byte x"
        );
        println!("{header}");
        rule(&header);
        for kind in kinds() {
            let cfg = SummaryCacheConfig {
                kind,
                policy: UpdatePolicy::Threshold(0.01),
                multicast_updates: false,
            };
            let r = simulate_summary_cache(&trace, &cfg, budget);
            // Round-trip the run's counters through an sc-obs registry:
            // every figure value is read back from the snapshot, the
            // same path the live proxy's tables use.
            let reg = sc_obs::Registry::new();
            r.metrics.record_into(&reg);
            let metrics = sc_sim::Metrics::from_obs(&reg.snapshot());
            let rates = metrics.rates();
            let n = metrics.requests.max(1) as f64;
            let icp_msgs = r.icp_queries as f64 / n;
            let icp_bytes = r.icp_query_bytes as f64 / n;
            let row = Row {
                trace: p.name.to_string(),
                representation: kind.label(),
                total_hit_ratio: rates.total_hit_ratio,
                false_hit_ratio: rates.false_hit_ratio,
                messages_per_request: rates.messages_per_request,
                bytes_per_request: rates.bytes_per_request,
                icp_messages_per_request: icp_msgs,
                icp_bytes_per_request: icp_bytes,
                message_reduction_factor: icp_msgs / rates.messages_per_request.max(1e-12),
                byte_reduction: 1.0 - rates.bytes_per_request / icp_bytes.max(1e-12),
            };
            println!(
                "{:>18} {:>9} {:>10} {:>10.4} {:>11.1} {:>8.1}x {:>9}",
                row.representation,
                pct(row.total_hit_ratio),
                pct(row.false_hit_ratio),
                row.messages_per_request,
                row.bytes_per_request,
                row.message_reduction_factor,
                pct(row.byte_reduction),
            );
            rows.push(row);
        }
        println!(
            "{:>18} {:>9} {:>10} {:>10.4} {:>11.1}",
            "ICP",
            "(same)",
            "-",
            rows.last().unwrap().icp_messages_per_request,
            rows.last().unwrap().icp_bytes_per_request,
        );

        // The paper's effective cadence: its 1% thresholds "translate
        // into roughly 300 to 3000 user requests between updates"
        // (Section V-A) because its proxies cache 30k-100k documents.
        // Our traces are smaller, so the nominal 1% fires far more
        // often; this row matches the paper's cadence instead.
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: 8, hashes: 4 },
            policy: UpdatePolicy::EveryRequests(300),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, budget);
        let reg = sc_obs::Registry::new();
        r.metrics.record_into(&reg);
        let metrics = sc_sim::Metrics::from_obs(&reg.snapshot());
        let rates = metrics.rates();
        let n = metrics.requests.max(1) as f64;
        let icp_msgs = r.icp_queries as f64 / n;
        let icp_bytes = r.icp_query_bytes as f64 / n;
        let row = Row {
            trace: p.name.to_string(),
            representation: "bloom-lf8 @300req".into(),
            total_hit_ratio: rates.total_hit_ratio,
            false_hit_ratio: rates.false_hit_ratio,
            messages_per_request: rates.messages_per_request,
            bytes_per_request: rates.bytes_per_request,
            icp_messages_per_request: icp_msgs,
            icp_bytes_per_request: icp_bytes,
            message_reduction_factor: icp_msgs / rates.messages_per_request.max(1e-12),
            byte_reduction: 1.0 - rates.bytes_per_request / icp_bytes.max(1e-12),
        };
        println!(
            "{:>18} {:>9} {:>10} {:>10.4} {:>11.1} {:>8.1}x {:>9}",
            row.representation,
            pct(row.total_hit_ratio),
            pct(row.false_hit_ratio),
            row.messages_per_request,
            row.bytes_per_request,
            row.message_reduction_factor,
            pct(row.byte_reduction),
        );
        rows.push(row);
    }
    println!();
    println!("paper: hit ratios within ~1 point of exact for every representation;");
    println!("paper: false hits server-name >> bloom-8 > bloom-16 > bloom-32 ~ exact;");
    println!("paper: messages cut 25-60x vs ICP at full trace scale, bytes cut 55-64%.");
    println!("note:  at reduced SC_SCALE the caches hold fewer documents, the 1%");
    println!("note:  threshold fires more often, and both factors shrink accordingly.");
    write_results("fig5to8", &rows);
}
