//! Fig. 4 — probability of Bloom-filter false positives as a function
//! of bits allocated per entry (log scale), for 4 hash functions and
//! for the optimum (integral) number of hash functions. Plus the
//! Section V-C counting-filter overflow bound.
//!
//! Pure closed-form; worked examples from the text are echoed.

use sc_bench::{rule, write_results};
use sc_bloom::analysis;

struct Row {
    bits_per_entry: f64,
    p_four_hashes: f64,
    k_optimal: u32,
    p_optimal: f64,
}

sc_json::json_struct!(Row { bits_per_entry, p_four_hashes, k_optimal, p_optimal });

fn main() {
    println!("Fig. 4: Bloom filter false-positive probability vs bits per entry");
    let header = format!(
        "{:>12} {:>14} {:>8} {:>14}",
        "bits/entry", "p (k=4)", "k_opt", "p (k=opt)"
    );
    println!("{header}");
    rule(&header);
    let series = analysis::fig4_series(2, 32);
    let rows: Vec<Row> = series
        .iter()
        .map(|pt| Row {
            bits_per_entry: pt.bits_per_entry,
            p_four_hashes: pt.p_four_hashes,
            k_optimal: pt.k_optimal,
            p_optimal: pt.p_optimal,
        })
        .collect();
    for r in &rows {
        println!(
            "{:>12.0} {:>14.3e} {:>8} {:>14.3e}",
            r.bits_per_entry, r.p_four_hashes, r.k_optimal, r.p_optimal
        );
    }
    println!();
    println!(
        "worked example (paper): m/n = 10 -> p = {:.4} at k = 4 (paper: 1.2%),",
        analysis::false_positive_probability_asymptotic(10.0, 4)
    );
    println!(
        "                        p = {:.4} at k = 5 (paper: 0.9%).",
        analysis::false_positive_probability_asymptotic(10.0, 5)
    );
    println!();
    println!("Section V-C counting-filter overflow bound, Pr(any count >= j) <= m(e ln2 / j)^j:");
    for j in [4u32, 8, 12, 16] {
        println!(
            "  j = {j:>2}: per-bit bound {:.3e}  (x m bits)",
            analysis::counter_overflow_probability(1, j)
        );
    }
    println!(
        "  paper: j = 16 gives 1.37e-15 x m — 4-bit counters are amply sufficient."
    );
    write_results("fig4", &rows);
}
