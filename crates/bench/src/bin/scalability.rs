//! Section V-F — scalability of summary cache.
//!
//! Two parts:
//!
//! 1. the paper's back-of-the-envelope worked example (100 proxies ×
//!    8 GB, load factor 16, 10 hashes, 1 % threshold) plus a sweep over
//!    proxy counts, via the closed-form calculator;
//! 2. "we have performed simulations with larger number of proxies and
//!    the results verify these back of the envelope calculations" — a
//!    trace-driven sweep over group counts showing per-request protocol
//!    overhead stays flat while ICP's grows linearly.

use sc_bench::{pct, rule, scale, write_results};
use sc_sim::{simulate_summary_cache, SummaryCacheConfig};
use sc_trace::{GeneratorConfig, TraceGenerator, TraceStats};
use summary_cache_core::scalability::{estimate, Deployment};
use summary_cache_core::{SummaryKind, UpdatePolicy};

struct AnalyticRow {
    proxies: u32,
    summary_mb: f64,
    peer_memory_mb: f64,
    update_msgs_per_request: f64,
    false_hit_per_request: f64,
    overhead_msgs_per_request: f64,
}

struct SimRow {
    groups: u32,
    sc_messages_per_request: f64,
    icp_messages_per_request: f64,
    total_hit_ratio: f64,
}

sc_json::json_struct!(AnalyticRow {
    proxies,
    summary_mb,
    peer_memory_mb,
    update_msgs_per_request,
    false_hit_per_request,
    overhead_msgs_per_request
});
sc_json::json_struct!(SimRow {
    groups,
    sc_messages_per_request,
    icp_messages_per_request,
    total_hit_ratio
});

fn main() {
    println!("Section V-F: scalability");
    println!("\n-- analytic (the paper's worked example and a proxy-count sweep) --");
    let header = format!(
        "{:>8} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "proxies", "summary MB", "peer mem MB", "upd/req", "false/req", "msgs/req"
    );
    println!("{header}");
    rule(&header);
    let mut analytic = Vec::new();
    for proxies in [4u32, 16, 32, 64, 100, 200] {
        let e = estimate(Deployment {
            proxies,
            ..Deployment::paper_example()
        });
        let row = AnalyticRow {
            proxies,
            summary_mb: e.summary_bytes as f64 / (1 << 20) as f64,
            peer_memory_mb: e.peer_memory_bytes as f64 / (1 << 20) as f64,
            update_msgs_per_request: e.update_messages_per_request,
            false_hit_per_request: e.false_hit_per_request,
            overhead_msgs_per_request: e.overhead_messages_per_request,
        };
        println!(
            "{:>8} {:>12.1} {:>14.0} {:>12.5} {:>12.4} {:>12.4}",
            row.proxies,
            row.summary_mb,
            row.peer_memory_mb,
            row.update_msgs_per_request,
            row.false_hit_per_request,
            row.overhead_msgs_per_request
        );
        analytic.push(row);
    }
    println!("paper @100: 2 MB/summary, ~200 MB peer memory + 8 MB counters,");
    println!("paper @100: <0.01 update msgs/req, ~4.7% false hits, <0.06 msgs/req total.");

    println!("\n-- simulation sweep over proxy-group counts --");
    let header = format!(
        "{:>8} {:>14} {:>14} {:>10}",
        "groups", "SC msgs/req", "ICP msgs/req", "hit"
    );
    println!("{header}");
    rule(&header);
    let mut sims = Vec::new();
    for groups in [4u32, 8, 16, 32] {
        let trace = TraceGenerator::new(GeneratorConfig {
            name: format!("sweep-{groups}"),
            requests: 240_000 / scale(),
            clients: groups * 40,
            documents: 100_000 / scale(),
            groups,
            seed: 0x5CA1E,
            ..Default::default()
        })
        .generate();
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom {
                load_factor: 16,
                hashes: 4,
            },
            // Request-cadence trigger keeps the update rate comparable
            // across group counts (Section V-A equivalence).
            policy: UpdatePolicy::EveryRequests(300),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, budget);
        let n = r.metrics.requests.max(1) as f64;
        let row = SimRow {
            groups,
            sc_messages_per_request: (r.metrics.queries_sent + r.metrics.update_messages) as f64
                / n,
            icp_messages_per_request: r.icp_queries as f64 / n,
            total_hit_ratio: r.metrics.rates().total_hit_ratio,
        };
        println!(
            "{:>8} {:>14.4} {:>14.4} {:>10}",
            row.groups,
            row.sc_messages_per_request,
            row.icp_messages_per_request,
            pct(row.total_hit_ratio)
        );
        sims.push(row);
    }
    println!();
    println!("paper: ICP overhead grows ~linearly with proxies (N R (1-H) inquiries);");
    println!("paper: summary-cache overhead stays near-flat — it scales to ~100 proxies.");
    write_results(
        "scalability",
        &sc_json::obj! { "analytic" => analytic, "simulation" => sims },
    );
}
