//! Fig. 2 — impact of summary update delays on total cache hit ratios.
//!
//! Exact-directory summaries (so the only error source is staleness),
//! cache = 10 % of the infinite cache size, update thresholds 0 (the
//! no-delay reference), 0.1 %, 1 %, 2 %, 5 % and 10 %. Reported per
//! threshold: total hit ratio, remote-stale-hit ratio, false-hit ratio.
//!
//! The paper's findings: degradation grows roughly linearly with the
//! threshold and stays small (0.1–1.7 % relative at the 1 % threshold);
//! remote stale hits are insensitive to delay; false hits are tiny but
//! grow with the threshold. NLANR is the outlier — duplicate
//! simultaneous requests make the hit ratio collapse even at small
//! delays, which the paper pins down with a delay of 2 and 10 requests;
//! the same sub-experiment runs here.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_sim::{simulate_summary_cache, SummaryCacheConfig};
use sc_trace::TraceStats;
use summary_cache_core::{SummaryKind, UpdatePolicy};

#[derive(Clone)]
struct Row {
    trace: String,
    policy: String,
    total_hit_ratio: f64,
    remote_stale_hit_ratio: f64,
    false_hit_ratio: f64,
    false_miss_ratio: f64,
}

sc_json::json_struct!(Row {
    trace,
    policy,
    total_hit_ratio,
    remote_stale_hit_ratio,
    false_hit_ratio,
    false_miss_ratio
});

fn run(
    trace: &sc_trace::Trace,
    budget: u64,
    policy: UpdatePolicy,
    label: &str,
    rows: &mut Vec<Row>,
) -> Row {
    let cfg = SummaryCacheConfig {
        kind: SummaryKind::ExactDirectory,
        policy,
        multicast_updates: false,
    };
    let r = simulate_summary_cache(trace, &cfg, budget);
    let rates = r.metrics.rates();
    let row = Row {
        trace: trace.name.clone(),
        policy: label.to_string(),
        total_hit_ratio: rates.total_hit_ratio,
        remote_stale_hit_ratio: rates.remote_stale_hit_ratio,
        false_hit_ratio: rates.false_hit_ratio,
        false_miss_ratio: rates.false_miss_ratio,
    };
    rows.push(row.clone());
    row
}

fn main() {
    println!("Fig. 2: impact of summary update delays (exact-directory, cache = 10% infinite)");
    let mut rows: Vec<Row> = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        println!("\n[{}]", p.name);
        let header = format!(
            "{:>12} {:>10} {:>12} {:>10} {:>11}",
            "threshold", "hit ratio", "stale hits", "false hit", "false miss"
        );
        println!("{header}");
        rule(&header);
        let mut reference = None;
        for (label, policy) in [
            ("no delay", UpdatePolicy::Threshold(0.0)),
            ("0.1%", UpdatePolicy::Threshold(0.001)),
            ("1%", UpdatePolicy::Threshold(0.01)),
            ("2%", UpdatePolicy::Threshold(0.02)),
            ("5%", UpdatePolicy::Threshold(0.05)),
            ("10%", UpdatePolicy::Threshold(0.10)),
        ] {
            let row = run(&trace, budget, policy, label, &mut rows);
            if reference.is_none() {
                reference = Some(row.total_hit_ratio);
            }
            println!(
                "{:>12} {:>10} {:>12} {:>10} {:>11}",
                label,
                pct(row.total_hit_ratio),
                pct(row.remote_stale_hit_ratio),
                pct(row.false_hit_ratio),
                pct(row.false_miss_ratio),
            );
        }
        // The NLANR anomaly sub-experiment: delays of 2 and 10 requests.
        if p.name == "NLANR" {
            println!("  -- anomaly sub-experiment (delay in user requests) --");
            for (label, policy) in [
                ("2 requests", UpdatePolicy::EveryRequests(2)),
                ("10 requests", UpdatePolicy::EveryRequests(10)),
            ] {
                let row = run(&trace, budget, policy, label, &mut rows);
                println!(
                    "{:>12} {:>10} {:>12} {:>10} {:>11}",
                    label,
                    pct(row.total_hit_ratio),
                    pct(row.remote_stale_hit_ratio),
                    pct(row.false_hit_ratio),
                    pct(row.false_miss_ratio),
                );
            }
        }
        if let Some(r0) = reference {
            let r1 = rows
                .iter()
                .rev()
                .find(|r| r.trace == p.name && r.policy == "1%")
                .map(|r| r.total_hit_ratio)
                .unwrap_or(r0);
            println!(
                "  degradation at 1% threshold: {:.2} points (paper: 0.02%..1.7% relative)",
                (r0 - r1) * 100.0
            );
        }
    }
    println!();
    println!("paper: hit-ratio loss grows ~linearly with threshold; stale hits flat;");
    println!("paper: NLANR collapses sharply with delay (duplicate-request anomaly).");
    write_results("fig2", &rows);
}
