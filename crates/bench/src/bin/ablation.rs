//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. hash-function count `k` at a fixed load factor (the paper fixes
//!    k = 4 "not the optimal choice … but suffices");
//! 2. Bloom load factor sweep beyond the paper's 8/16/32;
//! 3. counting-filter counter width (the paper's 4 bits vs narrower /
//!    wider), via the overflow bound;
//! 4. delta vs full-bitmap update crossover as a function of the
//!    update threshold;
//! 5. update trigger: fraction threshold vs request cadence vs trace
//!    time at matched update rates.

use sc_bench::{pct, rule, write_results};
use sc_bloom::analysis;
use sc_sim::{simulate_summary_cache, SummaryCacheConfig};
use sc_trace::{profile, TraceStats};
use summary_cache_core::{wire_cost, SummaryKind, UpdatePolicy};

struct KRow {
    k: u16,
    predicted_fp: f64,
    false_hit_ratio: f64,
    messages_per_request: f64,
}

struct LfRow {
    load_factor: u32,
    false_hit_ratio: f64,
    summary_fraction_of_cache: f64,
}

struct PolicyRow {
    policy: String,
    total_hit_ratio: f64,
    publishes: u64,
    update_bytes: u64,
}

sc_json::json_struct!(KRow { k, predicted_fp, false_hit_ratio, messages_per_request });
sc_json::json_struct!(LfRow { load_factor, false_hit_ratio, summary_fraction_of_cache });
sc_json::json_struct!(PolicyRow { policy, total_hit_ratio, publishes, update_bytes });

fn main() {
    let trace = profile("UPisa").expect("profile").generate_scaled(sc_bench::scale().max(2));
    let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;

    // 1. k sweep at load factor 16.
    println!("ablation 1: hash count k at load factor 16 (paper fixes k=4)");
    let header = format!(
        "{:>4} {:>14} {:>12} {:>10}",
        "k", "predicted fp", "false hits", "msgs/req"
    );
    println!("{header}");
    rule(&header);
    let mut k_rows = Vec::new();
    for k in [1u16, 2, 4, 8, 11] {
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: 16, hashes: k },
            policy: UpdatePolicy::EveryRequests(200),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, budget);
        let rates = r.metrics.rates();
        let row = KRow {
            k,
            predicted_fp: analysis::false_positive_probability_asymptotic(16.0, k as u32),
            false_hit_ratio: rates.false_hit_ratio,
            messages_per_request: rates.messages_per_request,
        };
        println!(
            "{:>4} {:>13.4}% {:>12} {:>10.4}",
            row.k,
            row.predicted_fp * 100.0,
            pct(row.false_hit_ratio),
            row.messages_per_request
        );
        k_rows.push(row);
    }
    println!("(k_opt at load factor 16 is {}; k=4 trades fp for probe cost)", analysis::optimal_k(16.0));

    // 2. load-factor sweep at k=4.
    println!("\nablation 2: load factor sweep at k=4");
    let header = format!(
        "{:>6} {:>12} {:>16}",
        "lf", "false hits", "summary %cache"
    );
    println!("{header}");
    rule(&header);
    let mut lf_rows = Vec::new();
    for lf in [2u32, 4, 8, 16, 32, 64] {
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: lf, hashes: 4 },
            policy: UpdatePolicy::EveryRequests(200),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, budget);
        let row = LfRow {
            load_factor: lf,
            false_hit_ratio: r.metrics.rates().false_hit_ratio,
            summary_fraction_of_cache: r.summary_memory_fraction_of_cache,
        };
        println!(
            "{:>6} {:>12} {:>16}",
            row.load_factor,
            pct(row.false_hit_ratio),
            pct(row.summary_fraction_of_cache)
        );
        lf_rows.push(row);
    }

    // 3. counter width: overflow probability per bit (analytic; the
    // paper's argument for 4 bits).
    println!("\nablation 3: counter width w -> clamp threshold 2^w-1, overflow bound per bit");
    for w in [2u32, 3, 4, 5] {
        let clamp = (1u32 << w) - 1;
        println!(
            "  w = {w}: clamp at {clamp:>2}, Pr(count >= {clamp:>2}) <= {:.3e} per bit",
            analysis::counter_overflow_probability(1, clamp)
        );
    }
    println!("  paper: 4 bits -> 1.37e-15 x m, 'amply sufficient'.");

    // 4. delta vs full-bitmap crossover: at what churn does shipping
    // the whole array win? (filter of m bits, f flips)
    println!("\nablation 4: delta vs full-bitmap update (m = 65536 bits)");
    let m = 65_536usize;
    let full = wire_cost::bloom_full_bytes(m);
    println!("  full bitmap: {full} bytes; delta wins below {} flips", (full - wire_cost::BLOOM_HEADER_BYTES) / wire_cost::BLOOM_FLIP_BYTES);
    for flips in [100usize, 1_000, 2_000, 2_048, 4_000] {
        let delta = wire_cost::bloom_delta_bytes(flips);
        println!(
            "  {flips:>5} flips: delta {delta:>6} B, chosen: {}",
            if delta < full { "delta" } else { "full bitmap" }
        );
    }

    // 4b. compressed full-bitmap transmission (the paper's "memory can
    // be further reduced" note; Mitzenmacher's compressed Bloom filters).
    println!("\nablation 4b: Golomb-coded full-bitmap transmission (65536-bit filter)");
    {
        use sc_bloom::{BloomFilter, FilterConfig};
        for (lf, n) in [(8u32, 8192usize), (16, 4096), (32, 2048)] {
            let mut f = BloomFilter::new(FilterConfig {
                bits: 65_536,
                hashes: 4,
                function_bits: 32,
            });
            for i in 0..n {
                f.insert(format!("http://s{}/d{i}", i % 97).as_bytes());
            }
            let raw = wire_cost::bloom_full_bytes(65_536);
            let coded = sc_bloom::compress::compressed_bytes(&sc_bloom::compress(f.bits()));
            println!(
                "  load factor {lf:>2} (fill {:.3}): raw {raw:>6} B, coded {coded:>6} B ({:.0}% saved)",
                f.fill_ratio(),
                (1.0 - coded as f64 / raw as f64) * 100.0
            );
            let _ = lf;
        }
    }

    // 5. update triggers at matched rates: ~every 200 requests.
    println!("\nablation 5: update triggers (matched to ~1 update per 200 requests/proxy)");
    let header = format!("{:>22} {:>10} {:>10} {:>14}", "trigger", "hit", "publishes", "update bytes");
    println!("{header}");
    rule(&header);
    let mut policy_rows = Vec::new();
    let per_proxy_requests = trace.len() as u64 / trace.groups as u64;
    let interval_ms = trace.duration_ms() / (per_proxy_requests / 200).max(1);
    for (label, policy) in [
        ("threshold 1%".to_string(), UpdatePolicy::Threshold(0.01)),
        ("every 200 requests".to_string(), UpdatePolicy::EveryRequests(200)),
        (
            format!("every {} s (trace time)", interval_ms / 1000),
            UpdatePolicy::EveryMillis(interval_ms),
        ),
    ] {
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: 16, hashes: 4 },
            policy,
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, budget);
        let row = PolicyRow {
            policy: label.clone(),
            total_hit_ratio: r.metrics.rates().total_hit_ratio,
            publishes: r.metrics.publishes,
            update_bytes: r.metrics.update_bytes,
        };
        println!(
            "{:>22} {:>10} {:>10} {:>14}",
            row.policy,
            pct(row.total_hit_ratio),
            row.publishes,
            row.update_bytes
        );
        policy_rows.push(row);
    }
    println!("\npaper (V-A/V-E): time- and threshold-triggers are equivalent once converted");
    println!("via request rate x miss ratio; thresholds adapt to load, intervals don't.");

    write_results(
        "ablation",
        &sc_json::obj! {
            "k_sweep" => k_rows,
            "load_factor_sweep" => lf_rows,
            "policies" => policy_rows,
        },
    );
}
