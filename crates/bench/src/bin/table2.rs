//! Table II — overhead of ICP in the four-proxy case, measured on the
//! live threaded cluster.
//!
//! The paper's setup (Section IV): 4 Squid proxies, 120 synthetic
//! clients (30 per proxy) issuing 200 requests each with zero think
//! time, Pareto document sizes, servers that delay replies by 1 s, and
//! *disjoint* client streams so there are no inter-proxy hits — the
//! worst case for ICP. Run at inherent hit ratios 25 % and 45 %, in
//! modes no-ICP, ICP, and SC-ICP (Section VII experiments 1–2 merge the
//! SC-ICP column into the same table).
//!
//! Paper numbers to compare shape against: ICP multiplies UDP messages
//! 73–90×, adds 8–13 % total packets, 20–24 % user CPU, 7–10 % system
//! CPU, and 8–12 % client latency; SC-ICP cuts the UDP traffic by ~50×
//! and lands within noise of no-ICP.

use sc_bench::{origin_delay_ms, pct, rule, write_results};
use sc_proxy::{BenchmarkConfig, Cluster, ClusterConfig, CpuTimes, ExperimentReport, Mode};
use std::time::Duration;

fn bench_cfg(hit_ratio: f64, seed: u64) -> BenchmarkConfig {
    BenchmarkConfig {
        clients_per_proxy: 30,
        requests_per_client: 200,
        target_hit_ratio: hit_ratio,
        size_pareto: (1.1, 1024, 256 * 1024),
        seed,
    }
}

fn run_mode(mode: Mode, hit_ratio: f64) -> ExperimentReport {
    let cfg = ClusterConfig {
        proxies: 4,
        mode,
        cache_bytes: 75 * 1024 * 1024, // the paper's 75 MB per proxy
        expected_docs: 16_000,
        origin_delay: Duration::from_millis(origin_delay_ms()),
        icp_timeout_ms: 500,
        keepalive_ms: 1_000,
        update_loss: 0.0,
    };
    let cluster = Cluster::start(&cfg).expect("cluster start");
    let cpu0 = CpuTimes::now();
    // Same seed across modes: "we use the same seeds ... to ensure
    // comparable results".
    let wall = cluster
        .run_benchmark(&bench_cfg(hit_ratio, 0xBEEF))
        .expect("benchmark run");
    let report = ExperimentReport::build(mode, wall, &cpu0, &cluster);
    cluster.shutdown();
    report
}

fn print_block(reports: &[ExperimentReport]) {
    let header = format!(
        "{:>8} {:>9} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "mode", "hit", "latency ms", "user CPU", "sys CPU", "UDP msgs", "TCP packets", "total pkts"
    );
    println!("{header}");
    rule(&header);
    let base = &reports[0];
    for r in reports {
        println!(
            "{:>8} {:>9} {:>12.2} {:>10.2} {:>10.2} {:>10} {:>12} {:>12}",
            r.mode,
            pct(r.totals.hit_ratio()),
            r.totals.avg_latency_ms(),
            r.cpu_user,
            r.cpu_system,
            r.totals.udp_messages(),
            r.totals.tcp_packets(),
            r.totals.total_packets(),
        );
    }
    println!("overhead vs no-ICP:");
    for r in &reports[1..] {
        let udp_factor = r.totals.udp_messages() as f64 / base.totals.udp_messages().max(1) as f64;
        println!(
            "{:>8}  UDP x{:<8.1} total pkts {:>8}  latency {:>8}  user CPU {:>8}",
            r.mode,
            udp_factor,
            pct(r.totals.total_packets() as f64 / base.totals.total_packets() as f64 - 1.0),
            pct(r.totals.avg_latency_ms() / base.totals.avg_latency_ms().max(1e-9) - 1.0),
            pct(r.cpu_user / base.cpu_user.max(1e-9) - 1.0),
        );
    }
}

fn main() {
    println!("Table II: ICP overhead, 4 proxies, 120 clients x 200 requests, no inter-proxy hits");
    println!(
        "(origin delay {} ms; paper used 1000 ms — set SC_ORIGIN_DELAY_MS to match)",
        origin_delay_ms()
    );
    let mut all = Vec::new();
    for hit_ratio in [0.25, 0.45] {
        println!("\n=== inherent hit ratio {} ===", pct(hit_ratio));
        let mut reports = Vec::new();
        for mode in [Mode::NoIcp, Mode::Icp, Mode::summary_cache_default()] {
            reports.push(run_mode(mode, hit_ratio));
        }
        print_block(&reports);
        all.extend(reports);
    }
    println!();
    println!("paper: ICP UDP x73-90, total packets +8-13%, user CPU +20-24%,");
    println!("paper: latency +8-12%; SC-ICP within noise of no-ICP on all columns.");
    write_results("table2", &all);
}
