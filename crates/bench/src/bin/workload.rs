//! Workload validation — measure the structure the synthetic traces
//! claim to have (DESIGN.md §3's substitution argument made checkable):
//! fitted Zipf popularity exponent, inter-group sharing potential,
//! temporal locality (stack distances), and the size tail.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_trace::analysis;

struct Row {
    trace: String,
    fitted_zipf_alpha: Option<f64>,
    sharing_potential: f64,
    stack_distance_p50: u64,
    stack_distance_p90: u64,
    size_p50: u64,
    size_p99: u64,
    mean_cross_group_overlap: f64,
}

sc_json::json_struct!(Row {
    trace,
    fitted_zipf_alpha,
    sharing_potential,
    stack_distance_p50,
    stack_distance_p90,
    size_p50,
    size_p99,
    mean_cross_group_overlap
});

fn main() {
    println!("Workload validation: measured structure of the synthetic traces");
    let header = format!(
        "{:>10} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "trace", "zipf a", "sharing", "sd p50", "sd p90", "size p50", "size p99", "overlap"
    );
    println!("{header}");
    rule(&header);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let alpha = analysis::popularity_exponent(&trace);
        let sharing = analysis::sharing_potential(&trace);
        let sd = analysis::stack_distance_profile(&trace, &[0.5, 0.9]);
        let sz = analysis::size_percentiles(&trace, &[0.5, 0.99]);
        let m = analysis::overlap_matrix(&trace);
        let g = m.len();
        let mean_overlap = m
            .iter()
            .enumerate()
            .flat_map(|(a, row)| {
                row.iter()
                    .enumerate()
                    .filter(move |(b, _)| a != *b)
                    .map(|(_, &v)| v)
            })
            .sum::<f64>()
            / (g * (g - 1)).max(1) as f64;
        let row = Row {
            trace: p.name.to_string(),
            fitted_zipf_alpha: alpha,
            sharing_potential: sharing,
            stack_distance_p50: sd[0],
            stack_distance_p90: sd[1],
            size_p50: sz[0],
            size_p99: sz[1],
            mean_cross_group_overlap: mean_overlap,
        };
        println!(
            "{:>10} {:>8} {:>9} {:>9} {:>9} {:>9}K {:>9}K {:>9}",
            row.trace,
            row.fitted_zipf_alpha
                .map_or("-".into(), |a| format!("{a:.2}")),
            pct(row.sharing_potential),
            row.stack_distance_p50,
            row.stack_distance_p90,
            row.size_p50 >> 10,
            row.size_p99 >> 10,
            pct(row.mean_cross_group_overlap),
        );
        rows.push(row);
    }
    println!();
    println!("expectations: zipf a in 0.6-1.1; sharing potential well above each trace's");
    println!("no-sharing hit ratio (that gap is what Fig. 1 monetizes); median stack");
    println!("distance tiny vs the document population; heavy size tail (p99 >> p50).");
    write_results("workload", &rows);
}
