//! Replacement-policy sensitivity (the Section III caveat: "Different
//! replacement algorithms may give different results"). Fig. 1's
//! headline comparison re-run under LRU, LFU, SIZE and GreedyDual-Size.

use sc_bench::{all_profiles, load_trace, pct, rule, write_results};
use sc_sim::replacement::simulate_scheme_with_policy;
use sc_sim::SchemeKind;
use sc_cache::Policy;
use sc_trace::TraceStats;

struct Row {
    trace: String,
    policy: String,
    no_sharing: f64,
    simple_sharing: f64,
    global: f64,
    sharing_gain: f64,
}

sc_json::json_struct!(Row { trace, policy, no_sharing, simple_sharing, global, sharing_gain });

fn main() {
    println!("Replacement-policy sensitivity (cache = 10% of infinite)");
    let header = format!(
        "{:>10} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "trace", "policy", "no-sharing", "simple", "global", "sharing gain"
    );
    println!("{header}");
    rule(&header);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let trace = load_trace(&p);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        for policy in Policy::all() {
            let hit = |scheme| {
                simulate_scheme_with_policy(&trace, scheme, policy, budget)
                    .rates()
                    .total_hit_ratio
            };
            let row = Row {
                trace: p.name.to_string(),
                policy: policy.label().to_string(),
                no_sharing: hit(SchemeKind::NoSharing),
                simple_sharing: hit(SchemeKind::SimpleSharing),
                global: hit(SchemeKind::Global),
                sharing_gain: hit(SchemeKind::SimpleSharing) - hit(SchemeKind::NoSharing),
            };
            println!(
                "{:>10} {:>8} {:>12} {:>12} {:>12} {:>14}",
                row.trace,
                row.policy,
                pct(row.no_sharing),
                pct(row.simple_sharing),
                pct(row.global),
                pct(row.sharing_gain),
            );
            rows.push(row);
        }
        println!();
    }
    println!("reading: the Fig. 1 conclusion — sharing beats isolation by a wide margin");
    println!("and simple sharing tracks the global cache — survives every policy; the");
    println!("policies reorder absolute hit ratios (GD-Size > LRU > LFU > SIZE typically),");
    println!("confirming Section III's caveat without weakening its conclusion.");
    write_results("replacement", &rows);
}
