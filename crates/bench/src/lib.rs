//! Shared plumbing for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it prints the same rows/series the paper reports (with a
//! `paper:` reference line where the original numbers are known) and
//! writes machine-readable JSON under `results/`.
//!
//! Environment knobs, honoured by every harness:
//!
//! * `SC_SCALE` — divide trace sizes by this factor (default 1; use 10
//!   for a quick pass);
//! * `SC_ORIGIN_DELAY_MS` — artificial origin latency for the live
//!   experiments (default 100; the paper used 1000);
//! * `SC_RESULTS_DIR` — where JSON results land (default `results/`).

use sc_trace::{profiles, Trace, TraceProfile};
use std::io::Write;
use std::path::PathBuf;

pub mod replay;

/// Trace scale divisor from `SC_SCALE`.
pub fn scale() -> usize {
    std::env::var("SC_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Origin delay for live experiments, from `SC_ORIGIN_DELAY_MS`.
pub fn origin_delay_ms() -> u64 {
    std::env::var("SC_ORIGIN_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// All five paper profiles.
pub fn all_profiles() -> Vec<TraceProfile> {
    profiles::all_profiles()
}

/// Generate a profile's trace at the configured scale.
pub fn load_trace(p: &TraceProfile) -> Trace {
    let s = scale();
    if s == 1 {
        p.generate()
    } else {
        p.generate_scaled(s)
    }
}

/// Where results land.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write one experiment's JSON rows.
pub fn write_results<T: sc_json::ToJson>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(rows.to_json().to_pretty().as_bytes());
            let _ = f.write_all(b"\n");
            eprintln!("[{name}] wrote {}", path.display());
        }
        Err(e) => eprintln!("[{name}] could not write {}: {e}", path.display()),
    }
}

/// Render a fraction as a fixed-width percentage.
pub fn pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

/// Render bytes with a binary-unit suffix.
pub fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_default_sanely() {
        // (Can't set env vars safely in parallel tests; just check the
        // defaults parse when unset.)
        assert!(scale() >= 1);
        assert!(origin_delay_ms() > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), " 12.34%");
        assert_eq!(human_bytes(512.0), "512.0 B");
        assert_eq!(human_bytes(2048.0), "2.0 KiB");
        assert_eq!(human_bytes(3.0 * 1024.0 * 1024.0), "3.0 MiB");
    }
}
