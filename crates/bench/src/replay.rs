//! Shared machinery for the Table IV / Table V replay experiments.

use crate::{origin_delay_ms, pct, rule, scale};
use sc_proxy::{Cluster, ClusterConfig, CpuTimes, ExperimentReport, Mode, ReplayMode};
use summary_cache_core::UpdatePolicy;
use sc_trace::{profile, Trace};
use std::time::Duration;

/// The replay workload: the *first* chunk of the full UPisa trace,
/// regrouped onto 4 proxies — the paper replays "the first 24856
/// requests from the UPisa trace" on its 4-proxy testbed. Taking a
/// prefix (rather than generating a small trace) keeps the cold-start
/// miss behaviour the paper's numbers reflect.
pub fn replay_trace() -> Trace {
    let p = profile("UPisa").expect("built-in profile");
    let mut t = p.generate(); // the full 120k-request trace
    t.requests.truncate(24_856 / scale().max(1));
    t.groups = 4; // regroup clients onto the 4-proxy testbed
    t
}

/// The SC-ICP mode with the Section VI-B prototype's update trigger
/// ("whenever there are enough changes to fill an IP packet").
pub fn sc_prototype_mode() -> Mode {
    Mode::SummaryCache {
        load_factor: 8,
        hashes: 4,
        policy: UpdatePolicy::packet_fill(),
    }
}

/// Run one cooperation mode of a replay experiment (80 driver tasks:
/// 20 per proxy, as in Section VII).
pub fn run_mode(mode: Mode, trace: &Trace, replay: ReplayMode) -> ExperimentReport {
    let cfg = ClusterConfig {
        proxies: 4,
        mode,
        cache_bytes: 75 * 1024 * 1024,
        expected_docs: 16_000,
        origin_delay: Duration::from_millis(origin_delay_ms()),
        icp_timeout_ms: 500,
        keepalive_ms: 1_000,
        update_loss: 0.0,
    };
    let cluster = Cluster::start(&cfg).expect("cluster start");
    let cpu0 = CpuTimes::now();
    let wall = cluster.run_replay(trace, 20, replay).expect("replay run");
    // Every number in the report — counters, tail latency included — is
    // a projection of the per-daemon sc-obs registry snapshots; nothing
    // is tallied on the side.
    let report = ExperimentReport::build(mode, wall, &cpu0, &cluster);
    cluster.shutdown();
    report
}

/// Shared table printer for Tables IV and V.
pub fn print_table(reports: &[ExperimentReport]) {
    let header = format!(
        "{:>8} {:>9} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "mode", "hit", "remote", "latency ms", "user CPU", "sys CPU", "UDP msgs", "false hit", "stale hits"
    );
    println!("{header}");
    rule(&header);
    for r in reports {
        let n = r.totals.http_requests.max(1) as f64;
        println!(
            "{:>8} {:>9} {:>9} {:>12.2} {:>10.2} {:>10.2} {:>10} {:>10} {:>11}",
            r.mode,
            pct(r.totals.hit_ratio()),
            pct(r.totals.remote_hits as f64 / n),
            r.totals.avg_latency_ms(),
            r.cpu_user,
            r.cpu_system,
            r.totals.udp_messages(),
            pct(r.totals.false_hits as f64 / n),
            pct(r.totals.remote_stale_hits as f64 / n),
        );
    }
    println!("tail latency (cluster-wide distribution):");
    for r in reports {
        println!(
            "{:>8}  p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms",
            r.mode, r.latency_ms_p50, r.latency_ms_p95, r.latency_ms_p99
        );
    }
    let icp = reports
        .iter()
        .find(|r| r.mode == "ICP")
        .map(|r| r.totals.udp_messages());
    let sc = reports
        .iter()
        .find(|r| r.mode == "SC-ICP")
        .map(|r| r.totals.udp_messages());
    if let (Some(icp), Some(sc)) = (icp, sc) {
        println!(
            "UDP reduction ICP -> SC-ICP: {:.1}x (paper: ~50x)",
            icp as f64 / sc.max(1) as f64
        );
    }
}
