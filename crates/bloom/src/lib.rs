#![warn(missing_docs)]

//! Bloom filters and **counting Bloom filters**, as used (and, for the
//! counting variant, introduced) by *Summary Cache: A Scalable Wide-Area
//! Web Cache Sharing Protocol* (Fan, Cao, Almeida, Broder, SIGCOMM '98).
//!
//! # The structure (paper Fig. 3)
//!
//! A Bloom filter represents a set of keys with a bit vector of `m` bits
//! and `k` independent hash functions `h_1 … h_k`, each with range
//! `0 … m-1`:
//!
//! ```text
//!                 key  (e.g. a document URL)
//!                  │
//!        ┌────── MD5(key): 128 bits ──────┐
//!        │ h_1(x) │ h_2(x) │ h_3(x) │ h_4(x)        (disjoint bit groups,
//!        └───┬────┴───┬────┴──┬─────┴──┬───          each mod m)
//!            ▼        ▼       ▼        ▼
//!  bits:  0 0 1 0 0 1 0 0 0 1 0 0 0 0 1 0 0 … 0     (m bits)
//! ```
//!
//! Inserting a key sets the `k` addressed bits; a membership query checks
//! them and answers "maybe present" only if all are 1. There are **no
//! false negatives** and a tunable false-positive probability
//! `(1 - e^{-kn/m})^k` (see [`analysis`]).
//!
//! A plain bit vector cannot support deletion — two keys may share a bit.
//! The paper's fix, the [`CountingBloomFilter`], keeps a small counter
//! (4 bits suffice, see [`analysis::counter_overflow_probability`]) per
//! bit position: insertion increments, deletion decrements, and the bit is
//! 1 iff the counter is non-zero. Each proxy maintains the counting filter
//! locally and broadcasts only the induced bit flips to its peers
//! (see [`delta::DeltaLog`]).
//!
//! # Quick start
//!
//! ```
//! use sc_bloom::{BloomFilter, FilterConfig};
//!
//! // Size for ~1000 keys at a load factor (bits per key) of 8, 4 hashes:
//! // the configuration the paper evaluates in Section V-D.
//! let cfg = FilterConfig::with_load_factor(1000, 8, 4);
//! let mut f = BloomFilter::new(cfg);
//! f.insert(b"http://example.com/index.html");
//! assert!(f.contains(b"http://example.com/index.html"));
//! ```

pub mod analysis;
pub mod bits;
pub mod compress;
pub mod counting;
pub mod delta;
pub mod filter;
pub mod hashing;
pub mod key;
pub mod rabin;

pub use bits::BitVec;
pub use compress::{compress, decompress, rice_parameter, CompressedBits};
pub use counting::CountingBloomFilter;
pub use delta::{DeltaLog, Flip};
pub use filter::{BloomFilter, FilterConfig};
pub use hashing::HashSpec;
pub use key::UrlKey;
