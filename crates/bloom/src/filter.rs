//! The plain (bit-vector) Bloom filter.

use crate::bits::BitVec;
use crate::hashing::{HashSpec, HashSpecError};
use crate::key::UrlKey;

/// Sizing and hashing parameters for a Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Bit-array size `m`.
    pub bits: u32,
    /// Number of hash functions `k`.
    pub hashes: u16,
    /// Digest bits per hash function; the paper uses 32.
    pub function_bits: u16,
}

impl FilterConfig {
    /// Size a filter as the paper does: `load_factor` bits per expected
    /// key ("a bit array 8/16/32 times the average number of documents",
    /// Section V-D), with `hashes` hash functions of 32 bits each.
    pub fn with_load_factor(expected_keys: usize, load_factor: u32, hashes: u16) -> Self {
        let bits = (expected_keys as u64 * load_factor as u64).max(1);
        FilterConfig {
            bits: bits.min(u32::MAX as u64) as u32,
            hashes,
            function_bits: 32,
        }
    }

    /// The derived [`HashSpec`] this configuration announces on the wire.
    pub fn hash_spec(&self) -> Result<HashSpec, HashSpecError> {
        HashSpec::new(self.hashes, self.function_bits, self.bits)
    }
}

/// A classic Bloom filter: no deletions, no false negatives, tunable
/// false positives.
///
/// In the protocol this is the *remote* view of a peer's directory; the
/// peer itself maintains a [`crate::CountingBloomFilter`] so it can delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    spec: HashSpec,
    bits: BitVec,
    /// Number of keys inserted (an upper bound on distinct keys).
    inserted: u64,
}

impl BloomFilter {
    /// An empty filter.
    ///
    /// # Panics
    /// If `config` is degenerate (zero hashes, zero bits, bad width);
    /// configs from [`FilterConfig::with_load_factor`] are always valid.
    pub fn new(config: FilterConfig) -> Self {
        let spec = config
            .hash_spec()
            .expect("FilterConfig with invalid hash parameters");
        BloomFilter {
            spec,
            bits: BitVec::new(config.bits as usize),
            inserted: 0,
        }
    }

    /// Build a remote view from a received full bitmap and its wire spec.
    pub fn from_parts(spec: HashSpec, bits: BitVec) -> Self {
        assert_eq!(
            spec.table_bits() as usize,
            bits.len(),
            "spec and bitmap disagree on table size"
        );
        BloomFilter {
            spec,
            bits,
            inserted: 0,
        }
    }

    /// The wire-visible hash parameters.
    pub fn spec(&self) -> HashSpec {
        self.spec
    }

    /// Insert `key`; duplicate inserts are harmless.
    pub fn insert(&mut self, key: &[u8]) {
        for i in self.spec.indices(key) {
            self.bits.set(i as usize, true);
        }
        self.inserted += 1;
    }

    /// Insert a pre-hashed key; duplicate inserts are harmless.
    pub fn insert_key(&mut self, key: &UrlKey) {
        let spec = self.spec;
        key.with_indices(&spec, |idx| {
            for &i in idx {
                self.bits.set(i as usize, true);
            }
        });
        self.inserted += 1;
    }

    /// Membership query: `false` is definite, `true` means "probably".
    pub fn contains(&self, key: &[u8]) -> bool {
        self.spec.indices(key).iter().all(|&i| self.bits.get(i as usize))
    }

    /// Membership query against a pre-hashed key. When the key already
    /// memoized this filter's spec (the hash-once probe pipeline), this
    /// performs zero MD5 work.
    pub fn contains_key(&self, key: &UrlKey) -> bool {
        key.with_indices(&self.spec, |idx| {
            idx.iter().all(|&i| self.bits.get(i as usize))
        })
    }

    /// Apply one absolute bit assignment (from a `DIRUPDATE` record).
    /// Returns whether the bit actually changed.
    pub fn apply_flip(&mut self, index: u32, value: bool) -> bool {
        self.bits.set(index as usize, value)
    }

    /// Replace the whole bit array (a full-bitmap update).
    ///
    /// # Panics
    /// If the new bitmap's length differs from the spec's table size.
    pub fn replace_bits(&mut self, bits: BitVec) {
        assert_eq!(bits.len(), self.spec.table_bits() as usize);
        self.bits = bits;
    }

    /// Discard all keys.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.inserted = 0;
    }

    /// The underlying bit array.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Fraction of bits set; the observed false-positive probability is
    /// `fill_ratio() ^ k`.
    pub fn fill_ratio(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Predicted false-positive probability from the current fill.
    pub fn false_positive_rate(&self) -> f64 {
        self.fill_ratio().powi(self.spec.k() as i32)
    }

    /// Memory footprint of the bit array in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::Rng;

    fn url(i: u32) -> Vec<u8> {
        format!("http://server{}.example.com/doc/{}.html", i % 97, i).into_bytes()
    }

    #[test]
    fn no_false_negatives_exhaustive() {
        let mut f = BloomFilter::new(FilterConfig::with_load_factor(2000, 8, 4));
        for i in 0..2000 {
            f.insert(&url(i));
        }
        for i in 0..2000 {
            assert!(f.contains(&url(i)), "false negative for key {i}");
        }
    }

    /// Paper Fig. 4 worked example: load factor ~10, k=4 ⇒ ~1.2 % false
    /// positives. Allow generous slack for sampling noise.
    #[test]
    fn false_positive_rate_near_theory() {
        let n = 10_000;
        let mut f = BloomFilter::new(FilterConfig::with_load_factor(n, 10, 4));
        for i in 0..n as u32 {
            f.insert(&url(i));
        }
        let probes = 50_000u32;
        let fp = (0..probes)
            .filter(|&i| f.contains(&url(1_000_000 + i)))
            .count();
        let rate = fp as f64 / probes as f64;
        assert!(
            (0.004..0.03).contains(&rate),
            "observed FP rate {rate} far from the ~1.2% theory"
        );
        // The filter's own prediction should agree with observation.
        let predicted = f.false_positive_rate();
        assert!((rate - predicted).abs() < 0.01, "{rate} vs predicted {predicted}");
    }

    #[test]
    fn clear_empties() {
        let mut f = BloomFilter::new(FilterConfig::with_load_factor(10, 8, 4));
        f.insert(b"x");
        f.clear();
        assert!(!f.contains(b"x"));
        assert_eq!(f.bits().count_ones(), 0);
    }

    #[test]
    fn remote_view_roundtrip() {
        let mut local = BloomFilter::new(FilterConfig::with_load_factor(100, 16, 4));
        for i in 0..100 {
            local.insert(&url(i));
        }
        let remote = BloomFilter::from_parts(local.spec(), local.bits().clone());
        for i in 0..100 {
            assert!(remote.contains(&url(i)));
        }
    }

    #[test]
    fn flips_track_inserts() {
        let cfg = FilterConfig::with_load_factor(50, 16, 4);
        let mut a = BloomFilter::new(cfg);
        let mut b = BloomFilter::new(cfg);
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..50 {
            let key = url(rng.gen_range(0..1_000_000));
            let before = a.bits().clone();
            a.insert(&key);
            for i in before.diff_indices(a.bits()) {
                assert!(b.apply_flip(i as u32, true));
            }
        }
        assert_eq!(a.bits(), b.bits());
    }

    #[test]
    #[should_panic(expected = "disagree on table size")]
    fn from_parts_checks_size() {
        let spec = HashSpec::paper_default(4, 64).unwrap();
        BloomFilter::from_parts(spec, BitVec::new(63));
    }
}
