//! The paper's MD5-based hash-function family (Sections V-D, V-E, VI-A).
//!
//! A summary's hash functions are fully described by two small integers
//! that travel in every `ICP_OP_DIRUPDATE` message so receivers can verify
//! and probe the filter:
//!
//! * `Function_Num` — the number of hash functions `k`;
//! * `Function_Bits` — the width `w` of the digest bit-group each function
//!   consumes.
//!
//! Function `i` takes bits `i*w .. (i+1)*w` out of the MD5 signature of
//! the key and reduces them modulo the bit-array size. When the 128 bits
//! of one digest are exhausted, further bits come from the MD5 signature
//! of the key concatenated with itself (then three copies, and so on), as
//! Section V-E prescribes.

use sc_md5::{md5_repeated, Digest};

/// Maximum bit-group width: indices are reduced mod a `u32` table size, so
/// wider groups add no entropy to a single probe.
pub const MAX_FUNCTION_BITS: u16 = 32;

/// A self-describing hash-function family: `k` functions of `w` digest
/// bits each, over a table of `m` bits.
///
/// `HashSpec` is the in-memory form of the `ICP_OP_DIRUPDATE` header
/// fields `Function_Num`, `Function_Bits` and `BitArray_Size_InBits`.
///
/// ```
/// use sc_bloom::HashSpec;
/// // Paper Section V-D: four functions from four 32-bit digest words.
/// let spec = HashSpec::new(4, 32, 1 << 20).unwrap();
/// let idx = spec.indices(b"http://example.com/");
/// assert_eq!(idx.len(), 4);
/// assert!(idx.iter().all(|&i| i < (1 << 20)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashSpec {
    function_num: u16,
    function_bits: u16,
    table_bits: u32,
}

/// Errors constructing a [`HashSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashSpecError {
    /// `k` must be at least 1.
    ZeroFunctions,
    /// `w` must be in `1..=32`.
    BadFunctionBits(u16),
    /// The table must have at least one bit.
    EmptyTable,
}

impl std::fmt::Display for HashSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HashSpecError::ZeroFunctions => write!(f, "hash family needs at least one function"),
            HashSpecError::BadFunctionBits(w) => {
                write!(f, "function bit width {w} outside 1..=32")
            }
            HashSpecError::EmptyTable => write!(f, "bit array must be non-empty"),
        }
    }
}

impl std::error::Error for HashSpecError {}

impl HashSpec {
    /// Build a spec with `k` functions of `w` bits over `m` table bits.
    pub fn new(k: u16, w: u16, m: u32) -> Result<Self, HashSpecError> {
        if k == 0 {
            return Err(HashSpecError::ZeroFunctions);
        }
        if w == 0 || w > MAX_FUNCTION_BITS {
            return Err(HashSpecError::BadFunctionBits(w));
        }
        if m == 0 {
            return Err(HashSpecError::EmptyTable);
        }
        Ok(HashSpec {
            function_num: k,
            function_bits: w,
            table_bits: m,
        })
    }

    /// The paper's default family: `k` functions of 32 bits each.
    pub fn paper_default(k: u16, m: u32) -> Result<Self, HashSpecError> {
        Self::new(k, 32, m)
    }

    /// Number of hash functions (`Function_Num`).
    pub fn k(&self) -> u16 {
        self.function_num
    }

    /// Digest bits consumed per function (`Function_Bits`).
    pub fn function_bits(&self) -> u16 {
        self.function_bits
    }

    /// Bit-array size (`BitArray_Size_InBits`).
    pub fn table_bits(&self) -> u32 {
        self.table_bits
    }

    /// The `k` bit positions addressed by `key`.
    ///
    /// Positions are not deduplicated: as in the paper, two functions may
    /// land on the same bit, and the counting filter then counts it twice.
    pub fn indices(&self, key: &[u8]) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.function_num as usize);
        self.indices_into(key, &mut out);
        out
    }

    /// Fill `out` with the `k` bit positions addressed by `key`, reusing
    /// the caller's buffer (cleared first).
    ///
    /// For the paper's default `w = 32` family this takes a word-wise fast
    /// path — index `i` is big-endian word `i mod 4` of
    /// `MD5(key‖…‖key)` with `i/4 + 1` copies, read as one `u32` load
    /// instead of 32 single-bit extractions. Narrower widths fall back to
    /// the bit-by-bit digest stream, which is the semantic reference.
    pub fn indices_into(&self, key: &[u8], out: &mut Vec<u32>) {
        let first = md5_repeated(key, 1);
        self.indices_with_digest(key, &first, out);
    }

    /// Like [`indices_into`](Self::indices_into), but with `MD5(key)`
    /// supplied by the caller so a key hashed once (a `UrlKey`) never pays
    /// for the first digest again. Overflow digests (`> 128` bits of
    /// demand) are still derived from `key` itself.
    pub(crate) fn indices_with_digest(&self, key: &[u8], first: &Digest, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.function_num as usize);
        let m = self.table_bits as u64;
        if self.function_bits == MAX_FUNCTION_BITS {
            // Word-wise fast path: 32-bit groups align exactly with the
            // digest's four big-endian words, so no group ever straddles a
            // digest boundary.
            let mut digest = *first;
            let mut copies = 1usize;
            for i in 0..self.function_num as usize {
                let word = i % 4;
                if word == 0 && i > 0 {
                    copies += 1;
                    digest = md5_repeated(key, copies);
                }
                let raw = u32::from_be_bytes([
                    digest[word * 4],
                    digest[word * 4 + 1],
                    digest[word * 4 + 2],
                    digest[word * 4 + 3],
                ]);
                out.push((raw as u64 % m) as u32);
            }
        } else {
            let mut stream = DigestBitStream::with_first_digest(key, *first);
            for _ in 0..self.function_num {
                let raw = stream.take(self.function_bits as u32);
                out.push((raw % m) as u32);
            }
        }
    }
}

/// Pulls successive bit groups out of MD5(key), MD5(key‖key), … treating
/// the digests as one continuous big-endian bit stream.
struct DigestBitStream<'k> {
    key: &'k [u8],
    digest: Digest,
    /// How many key copies produced the current digest.
    copies: usize,
    /// Next unread bit within the current digest (0..128).
    cursor: u32,
}

impl<'k> DigestBitStream<'k> {
    #[cfg(test)]
    fn new(key: &'k [u8]) -> Self {
        Self::with_first_digest(key, md5_repeated(key, 1))
    }

    /// Start the stream from an already-computed `MD5(key)`.
    fn with_first_digest(key: &'k [u8], first: Digest) -> Self {
        DigestBitStream {
            key,
            digest: first,
            copies: 1,
            cursor: 0,
        }
    }

    /// Read the next `n` bits (`1..=32`) as a big-endian integer.
    fn take(&mut self, n: u32) -> u64 {
        debug_assert!((1..=32).contains(&n));
        let mut v: u64 = 0;
        for _ in 0..n {
            if self.cursor == 128 {
                self.copies += 1;
                self.digest = md5_repeated(self.key, self.copies);
                self.cursor = 0;
            }
            let byte = self.digest[(self.cursor / 8) as usize];
            let bit = (byte >> (7 - self.cursor % 8)) & 1;
            v = (v << 1) | bit as u64;
            self.cursor += 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_md5::md5;

    #[test]
    fn rejects_degenerate_specs() {
        assert_eq!(HashSpec::new(0, 32, 8).unwrap_err(), HashSpecError::ZeroFunctions);
        assert_eq!(
            HashSpec::new(4, 0, 8).unwrap_err(),
            HashSpecError::BadFunctionBits(0)
        );
        assert_eq!(
            HashSpec::new(4, 33, 8).unwrap_err(),
            HashSpecError::BadFunctionBits(33)
        );
        assert_eq!(HashSpec::new(4, 32, 0).unwrap_err(), HashSpecError::EmptyTable);
    }

    /// With w=32 the four indices must equal the four big-endian digest
    /// words mod m — the exact construction in paper Section V-D.
    #[test]
    fn four_32bit_groups_match_digest_words() {
        let key = b"http://www.cs.wisc.edu/";
        let m = 999_983u32; // prime, not a power of two
        let spec = HashSpec::paper_default(4, m).unwrap();
        let d = md5(key);
        let expect: Vec<u32> = (0..4)
            .map(|i| {
                let w = u32::from_be_bytes(d[i * 4..i * 4 + 4].try_into().unwrap());
                w % m
            })
            .collect();
        assert_eq!(spec.indices(key), expect);
    }

    /// More than 128 bits of demand rolls over into MD5(key‖key).
    #[test]
    fn overflow_uses_repeated_key_digest() {
        let key = b"http://example.org/overflow";
        let m = 1 << 24;
        let spec = HashSpec::new(5, 32, m).unwrap();
        let idx = spec.indices(key);
        let doubled: Vec<u8> = key.iter().chain(key.iter()).copied().collect();
        let d2 = md5(&doubled);
        let w = u32::from_be_bytes(d2[0..4].try_into().unwrap());
        assert_eq!(idx[4], w % m);
    }

    #[test]
    fn deterministic_and_in_range() {
        let spec = HashSpec::new(10, 13, 4093).unwrap();
        let a = spec.indices(b"some/url");
        let b = spec.indices(b"some/url");
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&i| i < 4093));
    }

    #[test]
    fn narrow_groups_consume_stream_in_order() {
        // 16 functions × 8 bits = exactly one digest; each index must be
        // the corresponding digest byte mod m.
        let key = b"k";
        let m = 251u32;
        let spec = HashSpec::new(16, 8, m).unwrap();
        let d = md5(key);
        let expect: Vec<u32> = d.iter().map(|&b| b as u32 % m).collect();
        assert_eq!(spec.indices(key), expect);
    }

    #[test]
    fn different_keys_rarely_collide_fully() {
        let spec = HashSpec::paper_default(4, 1 << 16).unwrap();
        let a = spec.indices(b"http://a.example/");
        let b = spec.indices(b"http://b.example/");
        assert_ne!(a, b);
    }

    #[test]
    fn indices_into_reuses_and_clears_the_buffer() {
        let spec = HashSpec::paper_default(4, 1 << 16).unwrap();
        let mut buf = vec![0xdead_beef_u32; 9];
        spec.indices_into(b"http://a.example/", &mut buf);
        assert_eq!(buf, spec.indices(b"http://a.example/"));
        spec.indices_into(b"http://b.example/", &mut buf);
        assert_eq!(buf, spec.indices(b"http://b.example/"));
    }

    /// Bit-group extraction written independently of `DigestBitStream`:
    /// materialize the concatenated digest stream as individual bits, then
    /// read each group big-endian. The semantic reference for both the
    /// bit-by-bit stream and the `w = 32` word-wise fast path.
    fn reference_indices(spec: &HashSpec, key: &[u8]) -> Vec<u32> {
        let k = spec.k() as usize;
        let w = spec.function_bits() as usize;
        let digests_needed = (k * w).div_ceil(128);
        let mut bits: Vec<u8> = Vec::with_capacity(digests_needed * 128);
        for copies in 1..=digests_needed {
            for byte in md5_repeated(key, copies) {
                for b in (0..8).rev() {
                    bits.push((byte >> b) & 1);
                }
            }
        }
        (0..k)
            .map(|i| {
                let raw = bits[i * w..(i + 1) * w]
                    .iter()
                    .fold(0u64, |acc, &b| (acc << 1) | b as u64);
                (raw % spec.table_bits() as u64) as u32
            })
            .collect()
    }

    #[test]
    fn prop_indices_match_bitwise_reference() {
        // Random families across the full width range, including w < 32
        // (groups straddling digest boundaries) and overflow demand
        // (k*w > 128), checked against the independent reference and
        // against the take()-based stream.
        sc_util::prop::check("indices_match_bitwise_reference", 200, |rng| {
            let k = rng.gen_range(1u32..=20) as u16;
            let w = rng.gen_range(1u32..=32) as u16;
            let m = rng.gen_range(1u32..=1 << 20);
            let len = rng.gen_range(0u32..=80) as usize;
            let key: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..=255) as u8).collect();
            let spec = HashSpec::new(k, w, m).unwrap();
            let want = reference_indices(&spec, &key);
            assert_eq!(spec.indices(&key), want, "k={k} w={w} m={m}");
            let mut stream = DigestBitStream::new(&key);
            let streamed: Vec<u32> = (0..k)
                .map(|_| (stream.take(w as u32) % m as u64) as u32)
                .collect();
            assert_eq!(streamed, want, "stream disagrees: k={k} w={w} m={m}");
        });
    }
}
