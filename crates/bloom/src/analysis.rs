//! The paper's Bloom-filter mathematics (Section V-C, Fig. 4).
//!
//! Everything here is closed-form; the `fig4` experiment harness prints
//! these curves and the unit tests pin the worked examples from the text
//! (load factor 10 ⇒ 1.2 % false positives at k = 4, 0.9 % at the optimal
//! k = 5; 4-bit counters overflow with probability ≤ 1.37 × 10⁻¹⁵ · m).

use std::f64::consts::{E, LN_2};

/// Probability that a membership query for a key *not* in the set answers
/// "present": `(1 - (1 - 1/m)^{kn})^k` for a filter of `m` bits holding
/// `n` keys under `k` hash functions.
pub fn false_positive_probability(m: u64, n: u64, k: u32) -> f64 {
    assert!(m > 0 && k > 0, "degenerate filter");
    if n == 0 {
        return 0.0;
    }
    let exact_zero = (1.0 - 1.0 / m as f64).powf(k as f64 * n as f64);
    (1.0 - exact_zero).powi(k as i32)
}

/// The asymptotic form `(1 - e^{-kn/m})^k` used throughout the paper.
pub fn false_positive_probability_asymptotic(bits_per_entry: f64, k: u32) -> f64 {
    assert!(bits_per_entry > 0.0 && k > 0);
    (1.0 - (-(k as f64) / bits_per_entry).exp()).powi(k as i32)
}

/// The real-valued minimizer `k = ln 2 · m/n` of the false-positive
/// probability.
pub fn optimal_k_real(bits_per_entry: f64) -> f64 {
    LN_2 * bits_per_entry
}

/// The best *integer* number of hash functions for a given load factor:
/// whichever neighbour of `ln 2 · m/n` yields the lower false-positive
/// probability (at least 1).
pub fn optimal_k(bits_per_entry: f64) -> u32 {
    let real = optimal_k_real(bits_per_entry);
    let lo = (real.floor() as u32).max(1);
    let hi = lo + 1;
    let p_lo = false_positive_probability_asymptotic(bits_per_entry, lo);
    let p_hi = false_positive_probability_asymptotic(bits_per_entry, hi);
    if p_lo <= p_hi {
        lo
    } else {
        hi
    }
}

/// The floor of the minimum achievable false-positive probability,
/// `0.6185^{m/n}` (the paper's `(1/2)^{k}` at the optimal real `k`).
pub fn min_false_positive(bits_per_entry: f64) -> f64 {
    0.5f64.powf(optimal_k_real(bits_per_entry))
}

/// Upper bound on the probability that *any* of the `m` counters reaches
/// `threshold` after inserting `n` keys with the (near-)optimal
/// `k ≤ ln 2 · m/n` hash functions:
/// `Pr(max count ≥ j) ≤ m · (e ln 2 / j)^j` (paper Section V-C, citing
/// the balls-in-bins bound).
pub fn counter_overflow_probability(m: u64, threshold: u32) -> f64 {
    assert!(threshold > 0);
    let per_counter = (E * LN_2 / threshold as f64).powi(threshold as i32);
    (m as f64 * per_counter).min(1.0)
}

/// One point of the Fig. 4 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Bits allocated per entry, `m/n`.
    pub bits_per_entry: f64,
    /// False-positive probability with the paper's fixed `k = 4`.
    pub p_four_hashes: f64,
    /// The best integer `k` at this load factor.
    pub k_optimal: u32,
    /// False-positive probability at that optimal `k`.
    pub p_optimal: f64,
}

/// The two Fig. 4 series over an inclusive range of integer load factors.
pub fn fig4_series(from: u32, to: u32) -> Vec<Fig4Point> {
    assert!(from >= 1 && from <= to);
    (from..=to)
        .map(|lf| {
            let bpe = lf as f64;
            let k_opt = optimal_k(bpe);
            Fig4Point {
                bits_per_entry: bpe,
                p_four_hashes: false_positive_probability_asymptotic(bpe, 4),
                k_optimal: k_opt,
                p_optimal: false_positive_probability_asymptotic(bpe, k_opt),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper: "for a bit array 10 times larger than the number of entries,
    /// the probability of a false positive is 1.2 % for four hash
    /// functions, and 0.9 % for the optimum case of five hash functions."
    ///
    /// (The text's "five" is loose: the true integer optimum at m/n = 10
    /// is k = 7 with p ≈ 0.82 % — ln 2 · 10 ≈ 6.93 — and the paper's own
    /// formula k = ln 2 · m/n says so. We pin both numbers.)
    #[test]
    fn paper_worked_example_load_factor_ten() {
        let p4 = false_positive_probability_asymptotic(10.0, 4);
        assert!((p4 - 0.0118).abs() < 0.0005, "k=4: {p4}");
        let p5 = false_positive_probability_asymptotic(10.0, 5);
        assert!((p5 - 0.0094).abs() < 0.0005, "k=5: {p5}");
        assert_eq!(optimal_k(10.0), 7);
        let p7 = false_positive_probability_asymptotic(10.0, 7);
        assert!((p7 - 0.0082).abs() < 0.0005, "k=7: {p7}");
    }

    /// Paper: with 16 as the clamp threshold the overflow probability is
    /// ≤ 1.37 × 10⁻¹⁵ × m.
    #[test]
    fn paper_counter_overflow_bound() {
        let per = counter_overflow_probability(1, 16);
        assert!((1.3e-15..1.5e-15).contains(&per), "per-m bound {per}");
        // Even a gigabit filter stays minuscule.
        assert!(counter_overflow_probability(1 << 30, 16) < 2e-6);
    }

    #[test]
    fn exact_converges_to_asymptotic() {
        let exact = false_positive_probability(80_000, 10_000, 4);
        let asym = false_positive_probability_asymptotic(8.0, 4);
        assert!((exact - asym).abs() < 1e-4, "{exact} vs {asym}");
    }

    #[test]
    fn optimal_k_matches_ln2_rule() {
        assert_eq!(optimal_k(8.0), 6); // ln2*8 = 5.545 → 6 beats 5
        assert_eq!(optimal_k(16.0), 11); // ln2*16 = 11.09
        assert_eq!(optimal_k(1.0), 1);
    }

    #[test]
    fn optimal_never_worse_than_neighbours() {
        for lf in 1..=64u32 {
            let bpe = lf as f64;
            let k = optimal_k(bpe);
            let p = false_positive_probability_asymptotic(bpe, k);
            for other in [k.saturating_sub(1).max(1), k + 1] {
                assert!(
                    p <= false_positive_probability_asymptotic(bpe, other) + 1e-15,
                    "lf={lf} k={k} beaten by {other}"
                );
            }
        }
    }

    #[test]
    fn min_false_positive_is_lower_envelope() {
        for lf in [4.0, 8.0, 10.0, 16.0, 32.0] {
            let floor = min_false_positive(lf);
            let at_opt = false_positive_probability_asymptotic(lf, optimal_k(lf));
            assert!(floor <= at_opt + 1e-12, "lf {lf}: floor {floor} > {at_opt}");
            assert!(at_opt < floor * 1.3, "integer k should be near the floor");
        }
    }

    #[test]
    fn fig4_series_monotone_decreasing() {
        let series = fig4_series(2, 64);
        for pair in series.windows(2) {
            assert!(pair[1].p_optimal < pair[0].p_optimal);
            assert!(pair[1].p_four_hashes < pair[0].p_four_hashes);
        }
        // Optimal k is never worse than fixed k=4.
        for p in &series {
            assert!(p.p_optimal <= p.p_four_hashes + 1e-15);
        }
    }

    #[test]
    fn no_keys_no_false_positives() {
        assert_eq!(false_positive_probability(1024, 0, 4), 0.0);
    }
}
