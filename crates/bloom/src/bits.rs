//! A compact bit vector backing the Bloom filter's public bit array.


/// A fixed-length vector of bits packed into `u64` words.
///
/// This is the structure a proxy ships to its peers (as bytes or as bit-flip
/// deltas); it deliberately exposes exactly the operations the protocol
/// needs rather than being a general-purpose bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
    ones: usize,
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
            ones: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bits currently set — the filter "fill" that determines
    /// the observed false-positive rate.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i` to `value`, returning `true` if the bit changed.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        if was == value {
            return false;
        }
        *word ^= mask;
        if value {
            self.ones += 1;
        } else {
            self.ones -= 1;
        }
        true
    }

    /// Reset every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let tz = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Indices where `self` and `other` differ (the symmetric difference) —
    /// the minimal delta needed to turn one into the other.
    ///
    /// # Panics
    /// If lengths differ; a summary's size is fixed between full updates.
    pub fn diff_indices(&self, other: &BitVec) -> Vec<usize> {
        assert_eq!(self.len, other.len, "diff of different-length bit vectors");
        let mut out = Vec::new();
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let tz = x.trailing_zeros() as usize;
                x &= x - 1;
                out.push(wi * 64 + tz);
            }
        }
        out
    }

    /// The raw packed words, little-endian bit order within each word.
    /// Used when a full-bitmap update is cheaper than a delta.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Serialized size in bytes when shipped as a full bitmap.
    pub fn byte_len(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Rebuild from packed words (inverse of [`BitVec::as_words`]).
    ///
    /// # Panics
    /// If `words` is not exactly `len.div_ceil(64)` long or sets bits past
    /// `len`.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64));
        if !len.is_multiple_of(64) {
            let last = words[words.len() - 1];
            assert_eq!(last >> (len % 64), 0, "bits set past logical length");
        }
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        BitVec { len, words, ones }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, index_set};

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::new(130);
        assert!(!v.get(0));
        assert!(v.set(0, true));
        assert!(v.set(129, true));
        assert!(!v.set(129, true), "setting an already-set bit is a no-op");
        assert!(v.get(0) && v.get(129));
        assert_eq!(v.count_ones(), 2);
        assert!(v.set(0, false));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::new(10).get(10);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut v = BitVec::new(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn diff_indices_symmetric_difference() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(1, true);
        a.set(70, true);
        b.set(70, true);
        b.set(99, true);
        assert_eq!(a.diff_indices(&b), vec![1, 99]);
        assert_eq!(b.diff_indices(&a), vec![1, 99]);
        assert!(a.diff_indices(&a).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut v = BitVec::new(66);
        v.set(65, true);
        v.clear();
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(65));
    }

    #[test]
    fn byte_len_rounds_up() {
        assert_eq!(BitVec::new(0).byte_len(), 0);
        assert_eq!(BitVec::new(1).byte_len(), 1);
        assert_eq!(BitVec::new(8).byte_len(), 1);
        assert_eq!(BitVec::new(9).byte_len(), 2);
    }

    #[test]
    fn from_words_roundtrip() {
        let mut v = BitVec::new(70);
        v.set(0, true);
        v.set(69, true);
        let rebuilt = BitVec::from_words(70, v.as_words().to_vec());
        assert_eq!(rebuilt, v);
    }

    #[test]
    #[should_panic(expected = "past logical length")]
    fn from_words_rejects_overhang() {
        BitVec::from_words(65, vec![0, 0b100]);
    }

    #[test]
    fn prop_ones_matches_popcount() {
        check("bits_ones_matches_popcount", 256, |rng| {
            let indices = index_set(rng, 500, 0..100);
            let mut v = BitVec::new(500);
            for &i in &indices {
                v.set(i, true);
            }
            assert_eq!(v.count_ones(), indices.len());
            let collected: Vec<usize> = v.iter_ones().collect();
            assert_eq!(collected, indices);
        });
    }

    #[test]
    fn prop_applying_diff_makes_equal() {
        check("bits_applying_diff_makes_equal", 256, |rng| {
            let xs = index_set(rng, 300, 0..60);
            let ys = index_set(rng, 300, 0..60);
            let mut a = BitVec::new(300);
            let mut b = BitVec::new(300);
            for &i in &xs { a.set(i, true); }
            for &i in &ys { b.set(i, true); }
            let mut patched = a.clone();
            for i in a.diff_indices(&b) {
                let bit = patched.get(i);
                patched.set(i, !bit);
            }
            assert_eq!(patched, b);
        });
    }
}
