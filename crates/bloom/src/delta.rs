//! Bit-flip journals for incremental summary updates (Sections V-D, VI-A).
//!
//! Between directory updates a proxy remembers which filter bits changed.
//! Each change is an *absolute* assignment — "bit 17 is now 1" — encoded
//! on the wire as a 32-bit word whose most significant bit is the new
//! value and whose low 31 bits are the index. Absolute (rather than
//! toggle) semantics is the paper's defence against lost update messages:
//! a later record simply overwrites the effect of a lost earlier one, so
//! updates may travel over unreliable transport.

use crate::bits::BitVec;

/// Largest representable bit index: the wire word keeps 31 bits for the
/// index ("the design limits the hash table size to be less than
/// 2 billion, which for the time being is large enough").
pub const MAX_FLIP_INDEX: u32 = (1 << 31) - 1;

/// One absolute bit assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flip(u32);

impl Flip {
    /// "Set bit `index` to 1."
    ///
    /// # Panics
    /// If `index` exceeds [`MAX_FLIP_INDEX`].
    pub fn set(index: u32) -> Self {
        assert!(index <= MAX_FLIP_INDEX, "flip index {index} needs 32 bits");
        Flip(index | 1 << 31)
    }

    /// "Set bit `index` to 0."
    pub fn clear(index: u32) -> Self {
        assert!(index <= MAX_FLIP_INDEX, "flip index {index} needs 32 bits");
        Flip(index)
    }

    /// The addressed bit.
    pub fn index(self) -> u32 {
        self.0 & MAX_FLIP_INDEX
    }

    /// The new bit value.
    pub fn set_bit(self) -> bool {
        self.0 >> 31 == 1
    }

    /// The 32-bit wire word (MSB = value, low 31 bits = index).
    pub fn to_wire(self) -> u32 {
        self.0
    }

    /// Decode a wire word.
    pub fn from_wire(word: u32) -> Self {
        Flip(word)
    }
}

/// An append-only journal of flips since the last summary update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaLog {
    flips: Vec<Flip>,
}

impl DeltaLog {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append flips produced by a cache insert/evict.
    pub fn record(&mut self, flips: &[Flip]) {
        self.flips.extend_from_slice(flips);
    }

    /// Number of journal entries (before compaction).
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// True if nothing changed since the last update.
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// The raw entries, oldest first.
    pub fn entries(&self) -> &[Flip] {
        &self.flips
    }

    /// Collapse the journal to at most one record per bit (the last one
    /// wins, since records are absolute), dropping records that cancel out
    /// against `current`: if the bit's final value in the journal equals
    /// what peers already believe, nothing needs to be sent.
    ///
    /// `baseline` is the bit array as of the *last shipped update*.
    pub fn compact(&self, baseline: &BitVec, current: &BitVec) -> Vec<Flip> {
        assert_eq!(baseline.len(), current.len());
        // The journal's final state per bit is exactly current; the delta
        // worth sending is baseline XOR current.
        baseline
            .diff_indices(current)
            .into_iter()
            .map(|i| {
                if current.get(i) {
                    Flip::set(i as u32)
                } else {
                    Flip::clear(i as u32)
                }
            })
            .collect()
    }

    /// Drop all entries (after shipping an update).
    pub fn reset(&mut self) {
        self.flips.clear();
    }

    /// Wire size in bytes of shipping `n` flips as a delta update:
    /// 4 bytes per record (the paper's Section V-D cost model charges
    /// "4 bytes per bit-flip").
    pub fn delta_bytes(n: usize) -> usize {
        n * 4
    }
}

/// Apply flips to a bit array (receiver side). Out-of-range indices are
/// reported as errors rather than panicking: they indicate a peer sent an
/// update for a differently-sized filter, which the receiver must resolve
/// by requesting a full bitmap.
pub fn apply_flips(bits: &mut BitVec, flips: &[Flip]) -> Result<usize, FlipError> {
    let mut changed = 0;
    for f in flips {
        let i = f.index() as usize;
        if i >= bits.len() {
            return Err(FlipError::OutOfRange {
                index: f.index(),
                len: bits.len(),
            });
        }
        if bits.set(i, f.set_bit()) {
            changed += 1;
        }
    }
    Ok(changed)
}

/// Errors applying a received delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipError {
    /// A flip addressed a bit past the local filter's size.
    OutOfRange {
        /// The offending bit index.
        index: u32,
        /// The local filter's size in bits.
        len: usize,
    },
}

impl std::fmt::Display for FlipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlipError::OutOfRange { index, len } => {
                write!(f, "flip index {index} out of range for {len}-bit filter")
            }
        }
    }
}

impl std::error::Error for FlipError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, index_set};

    #[test]
    fn wire_roundtrip() {
        for f in [Flip::set(0), Flip::clear(0), Flip::set(MAX_FLIP_INDEX), Flip::clear(12345)] {
            let w = f.to_wire();
            assert_eq!(Flip::from_wire(w), f);
            assert_eq!(Flip::from_wire(w).index(), f.index());
            assert_eq!(Flip::from_wire(w).set_bit(), f.set_bit());
        }
    }

    #[test]
    fn msb_encodes_value() {
        assert_eq!(Flip::set(5).to_wire(), 0x8000_0005);
        assert_eq!(Flip::clear(5).to_wire(), 0x0000_0005);
    }

    #[test]
    #[should_panic(expected = "needs 32 bits")]
    fn rejects_oversized_index() {
        Flip::set(1 << 31);
    }

    #[test]
    fn apply_reports_out_of_range() {
        let mut bits = BitVec::new(8);
        let err = apply_flips(&mut bits, &[Flip::set(8)]).unwrap_err();
        assert_eq!(err, FlipError::OutOfRange { index: 8, len: 8 });
    }

    #[test]
    fn redundant_flips_are_idempotent() {
        let mut bits = BitVec::new(8);
        let changed = apply_flips(&mut bits, &[Flip::set(3), Flip::set(3), Flip::clear(5)]).unwrap();
        assert_eq!(changed, 1);
        assert!(bits.get(3));
    }

    #[test]
    fn compact_emits_only_net_changes() {
        let baseline = {
            let mut b = BitVec::new(16);
            b.set(1, true);
            b.set(2, true);
            b
        };
        let current = {
            let mut b = BitVec::new(16);
            b.set(2, true);
            b.set(9, true);
            b
        };
        let mut log = DeltaLog::new();
        // Journal with churn: bit 9 set, bit 1 cleared, bit 4 set then cleared.
        log.record(&[Flip::set(9), Flip::clear(1), Flip::set(4), Flip::clear(4)]);
        let compacted = log.compact(&baseline, &current);
        let mut patched = baseline.clone();
        apply_flips(&mut patched, &compacted).unwrap();
        assert_eq!(patched, current);
        assert_eq!(compacted.len(), 2, "bit 4's churn cancels out");
    }

    #[test]
    fn delta_bytes_cost_model() {
        assert_eq!(DeltaLog::delta_bytes(0), 0);
        assert_eq!(DeltaLog::delta_bytes(10), 40);
    }

    #[test]
    fn prop_compact_replay_reaches_current() {
        check("delta_compact_replay_reaches_current", 256, |rng| {
            let base = index_set(rng, 128, 0..40);
            let cur = index_set(rng, 128, 0..40);
            let mut baseline = BitVec::new(128);
            let mut current = BitVec::new(128);
            for &i in &base { baseline.set(i, true); }
            for &i in &cur { current.set(i, true); }
            let log = DeltaLog::new();
            let delta = log.compact(&baseline, &current);
            let mut patched = baseline.clone();
            apply_flips(&mut patched, &delta).unwrap();
            assert_eq!(patched, current);
        });
    }

    #[test]
    fn prop_flip_wire_roundtrip() {
        check("delta_flip_wire_roundtrip", 512, |rng| {
            let word = rng.next_u32();
            let f = Flip::from_wire(word);
            assert_eq!(f.to_wire(), word);
        });
    }
}
