//! Golomb–Rice compression of Bloom filter bitmaps.
//!
//! The paper notes the memory/false-positive tradeoff can be pushed
//! further; Mitzenmacher's *Compressed Bloom Filters* (PODC '01)
//! formalized the transmission side: a filter tuned below the
//! entropy-optimal fill (which the paper's k = 4 at load factors 16–32
//! already is) compresses well, so shipping a **coded** bitmap beats
//! shipping raw bits. This module implements the classic coding for
//! sparse bit sets — Golomb–Rice over the gaps between set bits — which
//! is also exactly how Squid's later cache-digest descendants compress.
//!
//! For a fill ratio `p`, gaps are geometric with mean `1/p`; a Rice
//! parameter `b ≈ log2(ln 2 / p)` is near-optimal, and the coded size
//! approaches the entropy `m·H(p)` bits versus `m` raw.

use crate::bits::BitVec;

/// A Golomb–Rice-coded bitmap, ready for a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedBits {
    /// Logical bitmap length in bits.
    pub len: u32,
    /// Number of set bits encoded.
    pub ones: u32,
    /// Rice parameter (gap low-bits).
    pub rice: u8,
    /// The code stream.
    pub data: Vec<u8>,
}

/// Bit-granular writer.
struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            cur: 0,
            used: 0,
        }
    }
    fn push(&mut self, bit: bool) {
        if bit {
            self.cur |= 1 << self.used;
        }
        self.used += 1;
        if self.used == 8 {
            self.out.push(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }
    fn push_unary(&mut self, q: u64) {
        for _ in 0..q {
            self.push(true);
        }
        self.push(false);
    }
    fn push_bits(&mut self, v: u64, n: u8) {
        for i in 0..n {
            self.push(v >> i & 1 == 1);
        }
    }
    fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.out.push(self.cur);
        }
        self.out
    }
}

/// Bit-granular reader.
struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }
    fn next(&mut self) -> Option<bool> {
        let byte = self.data.get(self.pos / 8)?;
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }
    fn read_unary(&mut self) -> Option<u64> {
        let mut q = 0;
        while self.next()? {
            q += 1;
        }
        Some(q)
    }
    fn read_bits(&mut self, n: u8) -> Option<u64> {
        let mut v = 0;
        for i in 0..n {
            if self.next()? {
                v |= 1 << i;
            }
        }
        Some(v)
    }
}

/// Near-optimal Rice parameter for a filter with `ones` set bits out of
/// `len`.
pub fn rice_parameter(len: usize, ones: usize) -> u8 {
    if ones == 0 || len == 0 {
        return 0;
    }
    let p = (ones as f64 / len as f64).clamp(1e-9, 0.999);
    let mean_gap = 1.0 / p;
    // b = log2(mean_gap * ln 2), clamped to sane bounds.
    ((mean_gap * std::f64::consts::LN_2).log2().round() as i32).clamp(0, 31) as u8
}

/// Compress a bitmap.
pub fn compress(bits: &BitVec) -> CompressedBits {
    let rice = rice_parameter(bits.len(), bits.count_ones());
    let mut w = BitWriter::new();
    let mut prev: i64 = -1;
    for i in bits.iter_ones() {
        let gap = (i as i64 - prev - 1) as u64; // zeros between set bits
        w.push_unary(gap >> rice);
        w.push_bits(gap, rice);
        prev = i as i64;
    }
    CompressedBits {
        len: bits.len() as u32,
        ones: bits.count_ones() as u32,
        rice,
        data: w.finish(),
    }
}

/// Errors decompressing a coded bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The code stream ended before all set bits were decoded.
    Truncated,
    /// A decoded position fell outside the declared length.
    OutOfRange,
    /// The declared Rice parameter exceeds 63 — shifting a `u64` gap by
    /// it would be out of range, so such streams are rejected up front.
    BadRice,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "coded bitmap truncated"),
            DecompressError::OutOfRange => write!(f, "coded position out of range"),
            DecompressError::BadRice => write!(f, "rice parameter exceeds 63"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompress back into a [`BitVec`].
///
/// Wire-facing: `c` may come from an untrusted datagram, so every
/// arithmetic step is checked — a Rice parameter above 63 is rejected
/// before any shift, and quotients or positions that overflow map to
/// [`DecompressError::OutOfRange`] instead of wrapping.
pub fn decompress(c: &CompressedBits) -> Result<BitVec, DecompressError> {
    if c.rice > 63 {
        return Err(DecompressError::BadRice);
    }
    let mut bits = BitVec::new(c.len as usize);
    let mut r = BitReader::new(&c.data);
    let mut next: u64 = 0; // position the next gap counts from
    for _ in 0..c.ones {
        let q = r.read_unary().ok_or(DecompressError::Truncated)?;
        let low = r.read_bits(c.rice).ok_or(DecompressError::Truncated)?;
        if q > u64::MAX >> c.rice {
            return Err(DecompressError::OutOfRange);
        }
        let gap = (q << c.rice) | low;
        let pos = next.checked_add(gap).ok_or(DecompressError::OutOfRange)?;
        if pos >= c.len as u64 {
            return Err(DecompressError::OutOfRange);
        }
        bits.set(pos as usize, true);
        next = pos + 1;
    }
    Ok(bits)
}

/// Wire size of the coded form (header: len + ones + rice ≈ 9 bytes).
pub fn compressed_bytes(c: &CompressedBits) -> usize {
    9 + c.data.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, index_set, vec_of};
    use sc_util::Rng;

    fn random_bits(len: usize, fill: f64, seed: u64) -> BitVec {
        let mut b = BitVec::new(len);
        let mut rng = Rng::seed_from_u64(seed);
        for i in 0..len {
            if rng.gen_bool(fill) {
                b.set(i, true);
            }
        }
        b
    }

    #[test]
    fn roundtrip_sparse_and_dense() {
        for fill in [0.0, 0.01, 0.1, 0.25, 0.5, 0.9] {
            let bits = random_bits(4096, fill, 42);
            let c = compress(&bits);
            let back = decompress(&c).unwrap();
            assert_eq!(back, bits, "fill {fill}");
        }
    }

    #[test]
    fn empty_and_full_edge_cases() {
        let empty = BitVec::new(100);
        let c = compress(&empty);
        assert_eq!(c.ones, 0);
        assert_eq!(decompress(&c).unwrap(), empty);

        let mut full = BitVec::new(64);
        for i in 0..64 {
            full.set(i, true);
        }
        let c = compress(&full);
        assert_eq!(decompress(&c).unwrap(), full);
    }

    /// The point of the exercise: at the paper's k = 4 / load factor 16
    /// operating point (fill ≈ 0.22) the coded bitmap beats raw bits.
    #[test]
    fn compression_beats_raw_at_paper_fill() {
        let len = 65_536;
        let bits = random_bits(len, 0.22, 7);
        let c = compress(&bits);
        let raw = len / 8;
        let coded = compressed_bytes(&c);
        assert!(
            coded < raw * 9 / 10,
            "coded {coded} should be <90% of raw {raw}"
        );
        // And at load factor 32 (fill ~0.12) the win is bigger.
        let sparse = random_bits(len, 0.12, 8);
        let c2 = compress(&sparse);
        assert!(compressed_bytes(&c2) < raw * 7 / 10);
    }

    #[test]
    fn half_fill_gains_nothing_much() {
        // At fill 0.5 the bitmap is incompressible (1 bit of entropy per
        // bit); the coded form must not explode either.
        let len = 65_536;
        let bits = random_bits(len, 0.5, 9);
        let c = compress(&bits);
        let raw = len / 8;
        assert!(compressed_bytes(&c) < raw * 3 / 2, "bounded overhead");
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bits = random_bits(1024, 0.2, 10);
        let mut c = compress(&bits);
        c.data.truncate(c.data.len() / 2);
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::Truncated) | Err(DecompressError::OutOfRange)
        ));
    }

    #[test]
    fn corrupt_count_is_detected_or_safe() {
        let bits = random_bits(1024, 0.2, 11);
        let mut c = compress(&bits);
        c.ones += 50; // claim more set bits than encoded
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn prop_roundtrip() {
        check("compress_roundtrip", 256, |rng| {
            let indices = index_set(rng, 2048, 0..400);
            let mut bits = BitVec::new(2048);
            for &i in &indices {
                bits.set(i, true);
            }
            let c = compress(&bits);
            assert_eq!(decompress(&c).unwrap(), bits);
        });
    }

    #[test]
    fn prop_decompress_never_panics() {
        // The full adversarial rice range — 64..=255 must be rejected
        // cleanly, never shifted.
        check("compress_decompress_never_panics", 512, |rng| {
            let c = CompressedBits {
                len: rng.gen_range(1u32..4096),
                ones: rng.gen_range(0u32..500),
                rice: rng.gen_range(0u8..=255),
                data: vec_of(rng, 0..256, |r| r.gen_range(0u8..=255)),
            };
            let _ = decompress(&c);
        });
    }

    /// The big-N issue's fill-ratio sweep: empty, nearly-empty,
    /// incompressible, and fully saturated bitmaps all round-trip.
    #[test]
    fn prop_roundtrip_at_extreme_fill_ratios() {
        check("compress_roundtrip_fill_ratios", 48, |rng| {
            for fill in [0.0, 1e-4, 0.5, 1.0] {
                let len = rng.gen_range(1usize..6000);
                let mut bits = BitVec::new(len);
                for i in 0..len {
                    if rng.gen_bool(fill) {
                        bits.set(i, true);
                    }
                }
                let c = compress(&bits);
                assert!(c.rice <= 31, "encoder rice stays clamped: {}", c.rice);
                assert_eq!(decompress(&c).unwrap(), bits, "fill {fill} len {len}");
            }
        });
    }

    #[test]
    fn rice_parameter_extremes_stay_in_range() {
        assert_eq!(rice_parameter(0, 0), 0);
        assert_eq!(rice_parameter(4096, 0), 0, "all-zeros bitmap");
        assert_eq!(rice_parameter(0, 17), 0, "degenerate length");
        assert_eq!(rice_parameter(1, 1), 0);
        assert_eq!(rice_parameter(1 << 20, 1 << 20), 0, "fully saturated");
        assert!(rice_parameter(u32::MAX as usize, 1) <= 31, "astronomically sparse clamps");
    }

    #[test]
    fn decode_rejects_rice_above_63() {
        let bad = |rice| CompressedBits {
            len: 128,
            ones: 1,
            rice,
            data: vec![0u8; 16],
        };
        assert_eq!(decompress(&bad(64)), Err(DecompressError::BadRice));
        assert_eq!(decompress(&bad(255)), Err(DecompressError::BadRice));
        // 63 itself is legal (if absurd) — it must decode or fail
        // cleanly, never shift out of range.
        let c = CompressedBits {
            len: 128,
            ones: 1,
            rice: 63,
            data: vec![0xff; 64],
        };
        assert!(matches!(
            decompress(&c),
            Err(DecompressError::Truncated) | Err(DecompressError::OutOfRange)
        ));
    }

    #[test]
    fn decode_overflowing_gap_is_out_of_range_not_panic() {
        // Unary quotient 16 shifted by rice 60 would overflow u64; the
        // decoder must report OutOfRange instead of wrapping.
        let mut data = vec![0xffu8, 0xff]; // unary run q = 16
        data.extend([0u8; 9]); // terminator + 60 zero low bits
        let c = CompressedBits {
            len: 1 << 20,
            ones: 1,
            rice: 60,
            data,
        };
        assert_eq!(decompress(&c), Err(DecompressError::OutOfRange));
    }
}
