//! The paper's **counting Bloom filter** (Section V-C).
//!
//! Each bit position carries a small counter of how many `(key, hash-fn)`
//! pairs currently address it. Insertion increments, deletion decrements,
//! and the public bit is 1 iff the counter is non-zero — so the filter
//! "always reflects correctly the current directory" while the exported
//! bit vector stays a plain Bloom filter.
//!
//! The paper shows 4-bit counters overflow with probability
//! ≤ 1.37 × 10⁻¹⁵ × m (see [`crate::analysis::counter_overflow_probability`])
//! and prescribes clamping at 15: "if the count ever exceeds 15, we can
//! simply let it stay at 15", accepting a minuscule chance that later
//! deletions drive a clamped counter to 0 early and produce a false
//! negative. We implement exactly that, and additionally count saturation
//! and underflow events so operators can observe them.

use crate::bits::BitVec;
use crate::delta::Flip;
use crate::filter::FilterConfig;
use crate::hashing::HashSpec;
use crate::key::UrlKey;

/// Default counter width from the paper: "4 bits per count would be amply
/// sufficient".
pub const DEFAULT_COUNTER_BITS: u8 = 4;

/// A Bloom filter with per-position counters, supporting deletion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloomFilter {
    spec: HashSpec,
    bits: BitVec,
    /// Packed counters, `counter_bits` wide each.
    counters: Vec<u8>,
    counter_bits: u8,
    max_count: u8,
    keys: u64,
    saturations: u64,
    underflows: u64,
}

impl CountingBloomFilter {
    /// Empty filter with the paper's 4-bit counters.
    pub fn new(config: FilterConfig) -> Self {
        Self::with_counter_bits(config, DEFAULT_COUNTER_BITS)
    }

    /// Empty filter with `counter_bits`-wide counters (1..=8). Narrower
    /// counters save memory at a higher clamping probability; the
    /// analysis module quantifies the tradeoff.
    pub fn with_counter_bits(config: FilterConfig, counter_bits: u8) -> Self {
        assert!(
            (1..=8).contains(&counter_bits),
            "counter width {counter_bits} outside 1..=8"
        );
        let spec = config
            .hash_spec()
            .expect("FilterConfig with invalid hash parameters");
        let m = config.bits as usize;
        let packed_len = (m * counter_bits as usize).div_ceil(8);
        CountingBloomFilter {
            spec,
            bits: BitVec::new(m),
            // sc-check: allow(alloc) — one-time construction.
            counters: vec![0; packed_len],
            counter_bits,
            max_count: if counter_bits == 8 {
                u8::MAX
            } else {
                (1u8 << counter_bits) - 1
            },
            keys: 0,
            saturations: 0,
            underflows: 0,
        }
    }

    /// The wire-visible hash parameters.
    pub fn spec(&self) -> HashSpec {
        self.spec
    }

    /// Counter value at position `i`.
    pub fn count(&self, i: usize) -> u8 {
        let bit_off = i * self.counter_bits as usize;
        let mut v: u16 = self.counters[bit_off / 8] as u16;
        if bit_off / 8 + 1 < self.counters.len() {
            v |= (self.counters[bit_off / 8 + 1] as u16) << 8;
        }
        ((v >> (bit_off % 8)) as u8) & self.max_count
    }

    fn set_count(&mut self, i: usize, value: u8) {
        debug_assert!(value <= self.max_count);
        let bit_off = i * self.counter_bits as usize;
        let shift = bit_off % 8;
        let mask = (self.max_count as u16) << shift;
        let byte = bit_off / 8;
        let mut v = self.counters[byte] as u16;
        if byte + 1 < self.counters.len() {
            v |= (self.counters[byte + 1] as u16) << 8;
        }
        v = (v & !mask) | ((value as u16) << shift);
        self.counters[byte] = v as u8;
        if byte + 1 < self.counters.len() {
            self.counters[byte + 1] = (v >> 8) as u8;
        }
    }

    /// Insert `key`, returning the bit positions that flipped 0→1.
    ///
    /// The flips are what the owning proxy appends to its
    /// [`crate::DeltaLog`] for the next directory-update message.
    pub fn insert(&mut self, key: &[u8]) -> Vec<Flip> {
        let idx = self.spec.indices(key);
        let mut flips = Vec::with_capacity(idx.len());
        self.insert_at(&idx, &mut flips);
        flips
    }

    /// Insert a pre-hashed key; see [`insert`](Self::insert).
    pub fn insert_key(&mut self, key: &UrlKey) -> Vec<Flip> {
        let mut flips = Vec::with_capacity(self.spec.k() as usize);
        self.insert_key_into(key, &mut flips);
        flips
    }

    /// Insert a pre-hashed key, appending its 0→1 flips to `flips`
    /// (which is *not* cleared) — the allocation-free twin of
    /// [`insert_key`](Self::insert_key) for callers holding a warm
    /// scratch buffer on the steady-state request path.
    pub fn insert_key_into(&mut self, key: &UrlKey, flips: &mut Vec<Flip>) {
        let spec = self.spec;
        key.with_indices(&spec, |idx| self.insert_at(idx, flips));
    }

    fn insert_at(&mut self, indices: &[u32], flips: &mut Vec<Flip>) {
        for &i in indices {
            let i = i as usize;
            let c = self.count(i);
            if c == self.max_count {
                self.saturations += 1;
                continue; // paper: "simply let it stay at 15"
            }
            self.set_count(i, c.saturating_add(1).min(self.max_count));
            if c == 0 {
                self.bits.set(i, true);
                flips.push(Flip::set(i as u32));
            }
        }
        self.keys += 1;
    }

    /// Remove `key`, returning the bit positions that flipped 1→0.
    ///
    /// Removing a key that was never inserted corrupts the filter, exactly
    /// as in the paper's Squid prototype; an underflow (decrement of a
    /// zero counter) is recorded and skipped rather than wrapping.
    pub fn remove(&mut self, key: &[u8]) -> Vec<Flip> {
        let idx = self.spec.indices(key);
        let mut flips = Vec::with_capacity(idx.len());
        self.remove_at(&idx, &mut flips);
        flips
    }

    /// Remove a pre-hashed key; see [`remove`](Self::remove).
    pub fn remove_key(&mut self, key: &UrlKey) -> Vec<Flip> {
        let mut flips = Vec::with_capacity(self.spec.k() as usize);
        self.remove_key_into(key, &mut flips);
        flips
    }

    /// Remove a pre-hashed key, appending its 1→0 flips to `flips`
    /// (which is *not* cleared) — the allocation-free twin of
    /// [`remove_key`](Self::remove_key).
    pub fn remove_key_into(&mut self, key: &UrlKey, flips: &mut Vec<Flip>) {
        let spec = self.spec;
        key.with_indices(&spec, |idx| self.remove_at(idx, flips));
    }

    fn remove_at(&mut self, indices: &[u32], flips: &mut Vec<Flip>) {
        for &i in indices {
            let i = i as usize;
            let c = self.count(i);
            if c == 0 {
                self.underflows += 1;
                continue;
            }
            self.set_count(i, c.saturating_sub(1));
            if c == 1 {
                self.bits.set(i, false);
                flips.push(Flip::clear(i as u32));
            }
        }
        self.keys = self.keys.saturating_sub(1);
    }

    /// Membership query against the derived bit vector.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.spec.indices(key).iter().all(|&i| self.bits.get(i as usize))
    }

    /// Membership query with a pre-hashed key; zero MD5 work when the
    /// key already memoized this filter's spec.
    pub fn contains_key(&self, key: &UrlKey) -> bool {
        key.with_indices(&self.spec, |idx| {
            idx.iter().all(|&i| self.bits.get(i as usize))
        })
    }

    /// The exported plain-Bloom-filter view (what peers receive).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of keys currently represented (inserts minus removes).
    pub fn len(&self) -> u64 {
        self.keys
    }

    /// True when no keys are represented.
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Times an increment hit a clamped counter.
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Times a decrement hit a zero counter.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Memory footprint in bytes: packed counters plus the bit array.
    /// With 4-bit counters this is the paper's "N/2 bytes of counters for
    /// an N-bit filter" plus N/8 bytes of bits.
    pub fn byte_len(&self) -> usize {
        self.counters.len() + self.bits.byte_len()
    }

    /// Fraction of bits set in the exported view.
    pub fn fill_ratio(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.bits.count_ones() as f64 / self.bits.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, vec_of};
    use std::collections::BTreeSet;

    fn cfg(keys: usize, lf: u32) -> FilterConfig {
        FilterConfig::with_load_factor(keys, lf, 4)
    }

    fn url(i: u32) -> Vec<u8> {
        format!("http://s{}.example/{}", i % 31, i).into_bytes()
    }

    #[test]
    fn insert_then_remove_restores_empty() {
        let mut f = CountingBloomFilter::new(cfg(500, 8));
        for i in 0..500 {
            f.insert(&url(i));
        }
        for i in 0..500 {
            f.remove(&url(i));
        }
        assert_eq!(f.bits().count_ones(), 0, "all bits cleared");
        assert_eq!(f.len(), 0);
        assert_eq!(f.underflows(), 0);
        for i in 0..500 {
            assert!(!f.contains(&url(i)));
        }
    }

    #[test]
    fn no_false_negatives_while_present() {
        let mut f = CountingBloomFilter::new(cfg(1000, 8));
        for i in 0..1000 {
            f.insert(&url(i));
        }
        // Remove half; the surviving half must still be present.
        for i in 0..500 {
            f.remove(&url(i));
        }
        for i in 500..1000 {
            assert!(f.contains(&url(i)), "false negative for live key {i}");
        }
    }

    #[test]
    fn counters_clamp_at_fifteen() {
        // A 1-bit table: every hash lands on bit 0.
        let config = FilterConfig {
            bits: 1,
            hashes: 1,
            function_bits: 32,
        };
        let mut f = CountingBloomFilter::new(config);
        for i in 0..40u32 {
            f.insert(&url(i));
        }
        assert_eq!(f.count(0), 15, "clamped at the 4-bit maximum");
        assert_eq!(f.saturations(), 40 - 15);
        // Deletions now drain the clamped counter; at 0 the bit clears even
        // though keys conceptually remain — the paper's accepted false
        // negative after clamping.
        for i in 0..15u32 {
            f.remove(&url(i));
        }
        assert_eq!(f.count(0), 0);
        assert!(!f.contains(&url(20)));
    }

    #[test]
    fn underflow_is_counted_not_wrapped() {
        let mut f = CountingBloomFilter::new(cfg(10, 8));
        f.remove(b"never inserted");
        assert_eq!(f.underflows(), 4, "one underflow per hash function");
        assert_eq!(f.bits().count_ones(), 0);
    }

    #[test]
    fn flips_describe_bit_transitions() {
        let mut f = CountingBloomFilter::new(cfg(100, 16));
        let first = f.insert(b"k1");
        assert!(!first.is_empty(), "fresh insert sets bits");
        assert!(first.iter().all(|fl| fl.set_bit()));
        let dup = f.insert(b"k1");
        assert!(dup.is_empty(), "re-insert touches no bits");
        let one = f.remove(b"k1");
        assert!(one.is_empty(), "one copy still present");
        let gone = f.remove(b"k1");
        assert_eq!(
            gone.iter().map(|fl| fl.index()).collect::<BTreeSet<_>>(),
            first.iter().map(|fl| fl.index()).collect::<BTreeSet<_>>(),
            "final remove clears exactly the bits the first insert set"
        );
        assert!(gone.iter().all(|fl| !fl.set_bit()));
    }

    #[test]
    fn narrow_and_wide_counter_widths() {
        for width in [1u8, 2, 3, 5, 8] {
            let mut f = CountingBloomFilter::with_counter_bits(cfg(100, 8), width);
            for i in 0..100 {
                f.insert(&url(i));
            }
            for i in 0..100 {
                assert!(f.contains(&url(i)), "width {width}, key {i}");
            }
            for i in 0..100 {
                f.remove(&url(i));
            }
            // Width 1 clamps constantly (max count = 1), so bits may clear
            // early, but wider counters must come back clean.
            if width >= 4 {
                assert_eq!(f.bits().count_ones(), 0, "width {width}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn rejects_zero_width() {
        CountingBloomFilter::with_counter_bits(cfg(1, 8), 0);
    }

    #[test]
    fn byte_len_accounts_counters_and_bits() {
        let f = CountingBloomFilter::new(FilterConfig {
            bits: 1024,
            hashes: 4,
            function_bits: 32,
        });
        assert_eq!(f.byte_len(), 1024 / 2 + 1024 / 8);
    }

    /// The exported bit vector always equals "counter > 0" and matches
    /// a plain Bloom filter over the live key multiset.
    #[test]
    fn prop_bits_consistent_with_counts() {
        check("cbf_bits_consistent_with_counts", 256, |rng| {
            let ops = vec_of(rng, 0..200, |r| (r.gen_range(0u32..64), r.gen_bool(0.5)));
            let config = cfg(64, 8);
            let mut f = CountingBloomFilter::new(config);
            let mut live: Vec<u32> = Vec::new();
            for (key, is_insert) in ops {
                if is_insert {
                    f.insert(&url(key));
                    live.push(key);
                } else if let Some(pos) = live.iter().position(|&k| k == key) {
                    live.swap_remove(pos);
                    f.remove(&url(key));
                }
            }
            if f.saturations() != 0 {
                return; // clamped counters may legitimately diverge
            }
            let mut plain = crate::BloomFilter::new(config);
            for &k in &live {
                plain.insert(&url(k));
            }
            assert_eq!(f.bits(), plain.bits());
            for i in 0..64usize {
                assert_eq!(f.bits().get(i), f.count(i) > 0);
            }
        });
    }

    /// Reference-multiset model, including the saturation path the test
    /// above bails on. A tiny table forces counters to clamp; the model
    /// mirrors the paper's exact rule (increment sticks at max, decrement
    /// of a clamped counter still decrements) per index, and the filter
    /// must agree with it counter-for-counter — with zero underflows for
    /// as long as only live keys are removed.
    #[test]
    fn prop_counters_match_reference_model_through_saturation() {
        check("cbf_reference_model", 256, |rng| {
            let width = rng.gen_range(2u8..=4);
            let bits = rng.gen_range(4u32..=16); // tiny: collisions everywhere
            let config = FilterConfig { bits, hashes: 2, function_bits: 32 };
            let mut f = CountingBloomFilter::with_counter_bits(config, width);
            let max = (1u16 << width) as u8 - 1;
            let spec = f.spec();

            // The model: true per-index reference counts with the paper's
            // clamp, plus the live-key multiset driving them.
            let mut model = vec![0u8; bits as usize];
            let mut model_saturations = 0u64;
            let mut model_underflows = 0u64;
            let mut live: Vec<u32> = Vec::new();

            for _ in 0..rng.gen_range(20..300usize) {
                let insert = live.is_empty() || rng.gen_bool(0.55);
                if insert {
                    let key = rng.gen_range(0u32..32);
                    f.insert(&url(key));
                    for &i in &spec.indices(&url(key)) {
                        let c = &mut model[i as usize];
                        if *c == max {
                            model_saturations += 1;
                        } else {
                            *c += 1;
                        }
                    }
                    live.push(key);
                } else {
                    let pos = rng.gen_range(0..live.len());
                    let key = live.swap_remove(pos);
                    f.remove(&url(key));
                    for &i in &spec.indices(&url(key)) {
                        let c = &mut model[i as usize];
                        // Clamped counters still decrement — the paper's
                        // accepted false-negative path — and a counter a
                        // past clamp drained to zero early underflows.
                        if *c == 0 {
                            model_underflows += 1;
                        } else {
                            *c -= 1;
                        }
                    }
                }
                for (i, &c) in model.iter().enumerate() {
                    assert_eq!(f.count(i), c, "counter {i} diverged from model");
                    assert_eq!(f.bits().get(i), c > 0, "bit {i} != (count > 0)");
                }
                assert_eq!(f.saturations(), model_saturations);
                assert_eq!(f.underflows(), model_underflows);
                if model_saturations == 0 {
                    assert_eq!(
                        f.underflows(),
                        0,
                        "without clamping, removing only live keys never underflows"
                    );
                }
                assert_eq!(f.len(), live.len() as u64);
            }
        });
    }

    /// Packed counter storage: set_count/count round-trips at every
    /// width and position, without disturbing neighbours.
    #[test]
    fn prop_counter_packing() {
        check("cbf_counter_packing", 256, |rng| {
            let width = rng.gen_range(1u8..=8);
            let values = vec_of(rng, 1..50, |r| r.gen_range(0u8..=255));
            let config = FilterConfig { bits: values.len() as u32, hashes: 1, function_bits: 32 };
            let mut f = CountingBloomFilter::with_counter_bits(config, width);
            let max = if width == 8 { 255 } else { (1u16 << width) as u8 - 1 };
            let clamped: Vec<u8> = values.iter().map(|&v| v.min(max)).collect();
            for (i, &v) in clamped.iter().enumerate() {
                f.set_count(i, v);
            }
            for (i, &v) in clamped.iter().enumerate() {
                assert_eq!(f.count(i), v, "width {} index {}", width, i);
            }
        });
    }
}
