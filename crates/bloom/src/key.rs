//! Hash-once probe keys.
//!
//! The paper's argument (Section V, Table II) is that probing a peer's
//! summary must be nearly free next to an ICP round-trip. A naive query
//! path recomputes `MD5(url)` and re-derives the Bloom indices for every
//! peer probed — `2 × k × peers` hash derivations per request. A
//! [`UrlKey`] hashes the key **once** at request admission and memoizes
//! the derived index set per [`HashSpec`], so probing N peers that share
//! a filter configuration (the common case: the spec travels in every
//! `DIRUPDATE` and clusters configure it uniformly) costs one MD5 total.

use crate::hashing::HashSpec;
use sc_md5::{md5, md5_x4, Digest};
use std::cell::RefCell;

/// A key (URL or server name) hashed once, with per-spec memoized
/// Bloom indices.
///
/// Construction computes `MD5(key)` eagerly — exact-directory and
/// server-name summaries probe by digest alone, so they never rehash.
/// Bloom index sets are derived lazily the first time a given
/// [`HashSpec`] probes the key and reused for every later probe against
/// the same spec (overflow digests for `k·w > 128` bits of demand are
/// derived from the retained key bytes, per paper Section V-E).
///
/// `UrlKey` is a per-request value: the memo uses a [`RefCell`], so it is
/// intentionally `!Sync` — build one where the request arrives and probe
/// with it on that thread.
///
/// ```
/// use sc_bloom::{HashSpec, UrlKey};
/// let spec = HashSpec::paper_default(4, 1 << 16).unwrap();
/// let key = UrlKey::new(b"http://example.com/");
/// assert_eq!(key.indices(&spec), spec.indices(b"http://example.com/"));
/// ```
#[derive(Debug, Clone)]
pub struct UrlKey {
    bytes: Vec<u8>,
    digest: Digest,
    /// Per-spec memoized index sets; a linear scan, since a request sees
    /// one spec (occasionally two during a reconfiguration) in practice.
    memo: RefCell<Vec<MemoEntry>>,
}

/// One memoized index set. `indices` stays allocated across
/// [`UrlKey::reset`] — a reused scratch key re-derives its indices into
/// the same buffer, so steady-state probing never allocates.
#[derive(Debug, Clone)]
struct MemoEntry {
    spec: HashSpec,
    indices: Vec<u32>,
    /// False after a [`UrlKey::reset`] until the next probe re-derives.
    valid: bool,
}

impl UrlKey {
    /// Hash `bytes` once and wrap them for repeated probing.
    pub fn new(bytes: &[u8]) -> UrlKey {
        UrlKey {
            bytes: bytes.to_vec(),
            digest: md5(bytes),
            // sc-check: allow(alloc) — key construction is the one place
            // the hash-once pipeline pays its setup cost.
            memo: RefCell::new(Vec::new()),
        }
    }

    /// Hash four keys in one interleaved pass ([`md5_x4`]) — same
    /// digests as four [`UrlKey::new`] calls at roughly a third of the
    /// latency. Bulk ingest (trace replay, summary rebuilds, the simnet
    /// request loop) batches its keys through here.
    pub fn new_batch(batch: [&[u8]; 4]) -> [UrlKey; 4] {
        let digests = md5_x4(batch);
        core::array::from_fn(|l| UrlKey {
            bytes: batch[l].to_vec(),
            digest: digests[l],
            // sc-check: allow(alloc) — batch construction is setup, the
            // same one-time cost `new` pays.
            memo: RefCell::new(Vec::new()),
        })
    }

    /// Digest `keys` into `out`, four lanes at a time (scalar for the
    /// final partial chunk).
    pub fn batch_into(keys: &[&[u8]], out: &mut Vec<UrlKey>) {
        let mut chunks = keys.chunks_exact(4);
        for c in &mut chunks {
            out.extend(UrlKey::new_batch([c[0], c[1], c[2], c[3]]));
        }
        for k in chunks.remainder() {
            out.push(UrlKey::new(k));
        }
    }

    /// Re-point this key at new bytes, reusing every allocation: the
    /// byte buffer keeps its capacity and memoized index sets are
    /// invalidated in place, to be re-derived into the same buffers on
    /// the next probe. A warm per-thread scratch key reset per request
    /// makes the steady-state probe path allocation-free.
    pub fn reset(&mut self, bytes: &[u8]) {
        self.bytes.clear();
        self.bytes.extend_from_slice(bytes);
        self.digest = md5(bytes);
        for e in self.memo.get_mut() {
            e.valid = false;
        }
    }

    /// The raw key bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// `MD5(key)`, computed at construction.
    pub fn digest(&self) -> &Digest {
        &self.digest
    }

    /// Run `f` over the index set for `spec`, deriving and memoizing it
    /// on first use.
    ///
    /// The memo borrow is held while `f` runs, so `f` must not probe the
    /// same `UrlKey` re-entrantly.
    pub fn with_indices<R>(&self, spec: &HashSpec, f: impl FnOnce(&[u32]) -> R) -> R {
        let mut memo = self.memo.borrow_mut();
        if let Some(pos) = memo.iter().position(|e| e.spec == *spec) {
            let e = &mut memo[pos];
            if !e.valid {
                // Invalidated by a reset: re-derive into the retained
                // buffer — no allocation once its capacity is warm.
                spec.indices_with_digest(&self.bytes, &self.digest, &mut e.indices);
                e.valid = true;
            }
            return f(&e.indices);
        }
        // sc-check: allow(alloc) — first-use memoization: this runs once
        // per (key, spec), never on the repeated-probe path.
        let mut idx = Vec::new();
        spec.indices_with_digest(&self.bytes, &self.digest, &mut idx);
        memo.push(MemoEntry {
            spec: *spec,
            indices: idx,
            valid: true,
        });
        let e = &memo[memo.len() - 1];
        f(&e.indices)
    }

    /// The index set for `spec`, as an owned vector (clones the memo
    /// entry; probing through [`with_indices`](Self::with_indices) or the
    /// filters' `*_key` methods avoids the copy).
    pub fn indices(&self, spec: &HashSpec) -> Vec<u32> {
        self.with_indices(spec, |idx| idx.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BloomFilter, CountingBloomFilter, FilterConfig};
    use sc_util::prop::check;

    #[test]
    fn digest_is_md5_of_bytes() {
        let key = UrlKey::new(b"abc");
        assert_eq!(key.digest(), &md5(b"abc"));
        assert_eq!(key.bytes(), b"abc");
    }

    #[test]
    fn memo_returns_same_indices_across_probes_and_specs() {
        let key = UrlKey::new(b"http://example.com/a");
        let s1 = HashSpec::paper_default(4, 1 << 16).unwrap();
        let s2 = HashSpec::new(10, 13, 4093).unwrap();
        for _ in 0..3 {
            assert_eq!(key.indices(&s1), s1.indices(key.bytes()));
            assert_eq!(key.indices(&s2), s2.indices(key.bytes()));
        }
    }

    #[test]
    fn memoized_probe_hashes_once_across_many_specs_sharing_config() {
        let spec = HashSpec::paper_default(4, 1 << 12).unwrap();
        let key = UrlKey::new(b"http://example.com/hot");
        let before = sc_md5::blocks_hashed();
        for _ in 0..100 {
            key.with_indices(&spec, |idx| assert_eq!(idx.len(), 4));
        }
        assert_eq!(
            sc_md5::blocks_hashed() - before,
            0,
            "construction already paid the digest; probes must be hash-free"
        );
    }

    #[test]
    fn batch_keys_equal_scalar_keys() {
        let urls: [&[u8]; 4] = [
            b"http://a.example/1",
            b"http://b.example/22",
            b"http://c.example/333",
            b"",
        ];
        let spec = HashSpec::paper_default(4, 1 << 12).unwrap();
        let batch = UrlKey::new_batch(urls);
        for (l, url) in urls.iter().enumerate() {
            let scalar = UrlKey::new(url);
            assert_eq!(batch[l].digest(), scalar.digest(), "lane {l}");
            assert_eq!(batch[l].bytes(), *url);
            assert_eq!(batch[l].indices(&spec), scalar.indices(&spec));
        }
    }

    #[test]
    fn batch_into_handles_partial_chunks() {
        for n in [0usize, 1, 3, 4, 5, 9] {
            let urls: Vec<Vec<u8>> =
                (0..n).map(|i| format!("http://s/{i}").into_bytes()).collect();
            let refs: Vec<&[u8]> = urls.iter().map(|u| u.as_slice()).collect();
            let mut out = Vec::new();
            UrlKey::batch_into(&refs, &mut out);
            assert_eq!(out.len(), n);
            for (k, u) in out.iter().zip(&urls) {
                assert_eq!(k.digest(), UrlKey::new(u).digest());
            }
        }
    }

    #[test]
    fn reset_behaves_like_a_fresh_key() {
        let spec = HashSpec::paper_default(4, 1 << 12).unwrap();
        let mut key = UrlKey::new(b"http://example.com/first");
        key.with_indices(&spec, |idx| assert_eq!(idx.len(), 4));
        for url in [b"http://example.com/second".as_slice(), b"x", b""] {
            key.reset(url);
            let fresh = UrlKey::new(url);
            assert_eq!(key.digest(), fresh.digest());
            assert_eq!(key.bytes(), url);
            assert_eq!(key.indices(&spec), fresh.indices(&spec));
        }
    }

    #[test]
    fn reset_probe_is_hash_free_after_the_reset_digest() {
        let spec = HashSpec::paper_default(4, 1 << 12).unwrap();
        let mut key = UrlKey::new(b"http://example.com/warm");
        key.with_indices(&spec, |_| ());
        let before = sc_md5::blocks_hashed();
        key.reset(b"http://example.com/next");
        assert_eq!(sc_md5::blocks_hashed() - before, 1, "reset digests once");
        let before = sc_md5::blocks_hashed();
        for _ in 0..50 {
            key.with_indices(&spec, |idx| assert_eq!(idx.len(), 4));
        }
        assert_eq!(sc_md5::blocks_hashed() - before, 0);
    }

    /// Satellite property: precomputed-key probe ≡ byte-slice probe for
    /// random specs and keys, including `w < 32` and overflow widths.
    #[test]
    fn prop_key_probe_equals_byte_probe() {
        check("urlkey_probe_equals_byte_probe", 200, |rng| {
            let k = rng.gen_range(1u32..=16) as u16;
            let w = rng.gen_range(1u32..=32) as u16;
            let bits = rng.gen_range(8u32..=4096);
            let config = FilterConfig {
                bits,
                hashes: k,
                function_bits: w,
            };
            let mut by_bytes = BloomFilter::new(config);
            let mut by_key = BloomFilter::new(config);
            let mut counting_bytes = CountingBloomFilter::new(config);
            let mut counting_key = CountingBloomFilter::new(config);
            let keys: Vec<Vec<u8>> = (0..rng.gen_range(1..40usize))
                .map(|i| format!("http://s{}.example/{}", i % 5, rng.gen_range(0u32..500)).into_bytes())
                .collect();
            for kb in &keys {
                by_bytes.insert(kb);
                by_key.insert_key(&UrlKey::new(kb));
                assert_eq!(
                    counting_bytes.insert(kb),
                    counting_key.insert_key(&UrlKey::new(kb)),
                    "insert flips diverge (k={k} w={w} m={bits})"
                );
            }
            assert_eq!(by_bytes.bits(), by_key.bits());
            assert_eq!(counting_bytes.bits(), counting_key.bits());
            for kb in &keys {
                let uk = UrlKey::new(kb);
                assert!(by_bytes.contains_key(&uk));
                assert_eq!(counting_bytes.contains(kb), counting_key.contains_key(&uk));
            }
            for _ in 0..20 {
                let probe = format!("http://absent/{}", rng.gen_range(0u32..1_000_000)).into_bytes();
                let uk = UrlKey::new(&probe);
                assert_eq!(by_bytes.contains(&probe), by_key.contains_key(&uk));
                assert_eq!(counting_bytes.contains(&probe), counting_key.contains_key(&uk));
            }
            for kb in &keys {
                assert_eq!(
                    counting_bytes.remove(kb),
                    counting_key.remove_key(&UrlKey::new(kb)),
                    "remove flips diverge (k={k} w={w} m={bits})"
                );
            }
            assert_eq!(counting_bytes.bits(), counting_key.bits());
        });
    }
}
