//! The faster hash family the paper sketches as MD5's alternative.
//!
//! Section V-D: "other faster hashing methods are available, for
//! instance hash functions can be based on polynomial arithmetic as in
//! Rabin's fingerprinting method … a simple hash function can be used
//! to generate, say 32 bits, and further bits can be obtained by taking
//! random linear transformations of these 32 bits viewed as an integer.
//! A disadvantage is that these faster functions are efficiently
//! invertible … a fact that might be used by malicious users".
//!
//! This module implements exactly that recipe: a Rabin fingerprint over
//! GF(2) with a fixed degree-63 irreducible polynomial produces 64 base
//! bits; each of the `k` probe positions is a random (but fixed, seeded)
//! linear transformation of the fingerprint, reduced modulo the table
//! size. It is several times faster than MD5 per key — and, as the
//! paper warns, **not** collision-resistant against adversarial inputs:
//! use it only where peers are trusted.


/// A fixed irreducible polynomial of degree 64 over GF(2) (the low 64
/// coefficient bits; the x^64 term is implicit).
const POLY: u64 = 0x1B; // x^64 + x^4 + x^3 + x + 1 (a known irreducible)

/// Multiplier/offset pairs are derived from this seed via splitmix64,
/// so every [`RabinFamily`] with equal parameters is identical across
/// processes — required for summaries to be probeable by peers.
const FAMILY_SEED: u64 = 0x5CA1_AB1E_0DDB_A110;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Byte-at-a-time reduction table: `TABLE[t] = (t · x⁶⁴) mod POLY`,
/// computed at compile time. This is what makes the family actually
/// faster than MD5 (the paper's whole argument for it).
const TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0usize;
    while i < 256 {
        // Multiply the degree-≤7 polynomial `i` by x^64, reducing mod
        // POLY one shift at a time.
        let mut f = i as u64;
        let mut b = 0;
        while b < 64 {
            let carry = f >> 63 & 1 == 1;
            f <<= 1;
            if carry {
                f ^= POLY;
            }
            b += 1;
        }
        table[i] = f;
        i += 1;
    }
    table
};

/// Rabin fingerprint of a byte string: the string's bits reduced modulo
/// [`POLY`] in GF(2). Table-driven, one lookup + shift + xor per byte.
pub fn fingerprint(data: &[u8]) -> u64 {
    let mut f: u64 = 0;
    for &byte in data {
        let top = (f >> 56) as usize;
        f = (f << 8) | byte as u64;
        f ^= TABLE[top];
    }
    f
}

/// Reference bit-at-a-time implementation, kept as the oracle the
/// table-driven version is tested against.
#[cfg(test)]
fn fingerprint_bitwise(data: &[u8]) -> u64 {
    let mut f: u64 = 0;
    for &byte in data {
        for bit in (0..8).rev() {
            let carry = f >> 63 & 1 == 1;
            f <<= 1;
            if byte >> bit & 1 == 1 {
                f |= 1;
            }
            if carry {
                f ^= POLY;
            }
        }
    }
    f
}

/// A `k`-function probe family over a table of `m` bits, built from one
/// Rabin fingerprint plus `k` fixed random linear transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RabinFamily {
    k: u16,
    m: u32,
    /// Odd multipliers (odd ⇒ invertible mod 2^64 ⇒ full-entropy mix).
    muls: Vec<u64>,
    offs: Vec<u64>,
}

impl RabinFamily {
    /// A family of `k` functions over `m` table bits.
    ///
    /// # Panics
    /// If `k == 0` or `m == 0`.
    pub fn new(k: u16, m: u32) -> Self {
        assert!(k > 0 && m > 0, "degenerate hash family");
        let mut state = FAMILY_SEED;
        let muls = (0..k).map(|_| splitmix64(&mut state) | 1).collect();
        let offs = (0..k).map(|_| splitmix64(&mut state)).collect();
        RabinFamily { k, m, muls, offs }
    }

    /// Number of functions.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Table size in bits.
    pub fn table_bits(&self) -> u32 {
        self.m
    }

    /// The `k` probe positions for `key`.
    pub fn indices(&self, key: &[u8]) -> Vec<u32> {
        let f = fingerprint(key);
        self.indices_of_fingerprint(f)
    }

    /// Probe positions from a precomputed fingerprint (lets callers hash
    /// once and probe many peer filters).
    pub fn indices_of_fingerprint(&self, f: u64) -> Vec<u32> {
        self.muls
            .iter()
            .zip(&self.offs)
            .map(|(&a, &b)| {
                let mixed = f.wrapping_mul(a).wrapping_add(b);
                // Top bits of an odd-multiplier product are the well-mixed
                // ones (multiply-shift hashing).
                ((mixed >> 32) % self.m as u64) as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fingerprint_is_deterministic_and_spread() {
        let a = fingerprint(b"http://example.com/a");
        assert_eq!(a, fingerprint(b"http://example.com/a"));
        let b = fingerprint(b"http://example.com/b");
        assert_ne!(a, b);
        // Rabin fingerprints are linear, so a trailing-bit change only
        // perturbs low-order terms — the avalanche comes from the
        // multiply-shift stage. Check it there:
        let fam = RabinFamily::new(4, 1 << 20);
        let c = fingerprint(b"http://example.com/c");
        assert_ne!(
            fam.indices_of_fingerprint(b),
            fam.indices_of_fingerprint(c),
            "probe positions must diverge on near-identical keys"
        );
    }

    #[test]
    fn table_driven_matches_bitwise_oracle() {
        let cases: [&[u8]; 6] = [
            b"",
            b"a",
            b"http://example.com/some/long/path?with=query",
            &[0xFF; 100],
            &[0x00; 33],
            b"\x80\x01\x7f\xfe",
        ];
        for data in cases {
            assert_eq!(
                fingerprint(data),
                fingerprint_bitwise(data),
                "mismatch on {data:?}"
            );
        }
        // And a longer pseudo-random buffer.
        let buf: Vec<u8> = (0..1000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        assert_eq!(fingerprint(&buf), fingerprint_bitwise(&buf));
    }

    #[test]
    fn empty_and_prefix_inputs() {
        assert_eq!(fingerprint(b""), 0);
        // Appending a zero byte must change the fingerprint (polynomial
        // shifts), unlike naive XOR hashing.
        assert_ne!(fingerprint(b"x"), fingerprint(b"x\0"));
    }

    #[test]
    fn family_is_stable_across_instances() {
        let f1 = RabinFamily::new(4, 1 << 20);
        let f2 = RabinFamily::new(4, 1 << 20);
        assert_eq!(f1, f2, "peers must derive identical families");
        assert_eq!(f1.indices(b"key"), f2.indices(b"key"));
    }

    #[test]
    fn indices_in_range_and_fingerprint_path_agrees() {
        let fam = RabinFamily::new(6, 999_983);
        let idx = fam.indices(b"http://a/b");
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|&i| i < 999_983));
        let f = fingerprint(b"http://a/b");
        assert_eq!(fam.indices_of_fingerprint(f), idx);
    }

    #[test]
    fn false_positive_rate_matches_bloom_theory() {
        // Build a plain bit table with the Rabin family and check the
        // empirical FP rate against (1 - e^{-kn/m})^k, like the MD5
        // family's test — the uniformity claim made measurable.
        let n = 10_000u32;
        let m = 80_000u32; // load factor 8
        let fam = RabinFamily::new(4, m);
        let mut bits = crate::BitVec::new(m as usize);
        for i in 0..n {
            for idx in fam.indices(format!("http://s{}/d{i}", i % 97).as_bytes()) {
                bits.set(idx as usize, true);
            }
        }
        let probes = 50_000u32;
        let fp = (0..probes)
            .filter(|i| {
                fam.indices(format!("http://t{}/x{i}", i % 89).as_bytes())
                    .iter()
                    .all(|&idx| bits.get(idx as usize))
            })
            .count();
        let rate = fp as f64 / probes as f64;
        let theory = crate::analysis::false_positive_probability_asymptotic(8.0, 4);
        assert!(
            (rate - theory).abs() < 0.01,
            "rabin family FP {rate:.4} vs theory {theory:.4}"
        );
    }

    #[test]
    fn distinct_functions_distinct_positions() {
        let fam = RabinFamily::new(8, 1 << 24);
        let idx = fam.indices(b"one key");
        let distinct: HashSet<u32> = idx.iter().copied().collect();
        assert!(distinct.len() >= 7, "functions shouldn't collapse: {idx:?}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_k() {
        RabinFamily::new(0, 64);
    }
}
