//! Compact and pretty JSON writers.

use crate::Value;

pub(crate) fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; serialize them as `null` (what serde_json
/// does for its `f64` value type as well).
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // `Display` drops the fraction for integral floats ("2" for 2.0);
        // keep a marker so the value re-parses as a float.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let v = Value::parse(text).unwrap();
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v, "compact {text}");
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v, "pretty {text}");
    }

    #[test]
    fn roundtrips() {
        for t in [
            "null",
            "[]",
            "{}",
            r#"{"a":[1,-2,3.5,"x\ny",{"b":false}],"c":null}"#,
            "18446744073709551615",
            "-9223372036854775808",
        ] {
            roundtrip(t);
        }
    }

    #[test]
    fn float_always_reparses_as_float() {
        assert_eq!(Value::Float(2.0).to_compact(), "2.0");
        assert_eq!(Value::parse("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(Value::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(Value::Str("\u{1}".into()).to_compact(), "\"\\u0001\"");
        assert_eq!(Value::Str("a\"b\\c".into()).to_compact(), r#""a\"b\\c""#);
    }

    #[test]
    fn pretty_layout() {
        let v = Value::parse(r#"{"a":1,"b":[true]}"#).unwrap();
        assert_eq!(v.to_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }
}
