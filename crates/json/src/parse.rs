//! Strict recursive-descent JSON parser.

use crate::Value;

/// Maximum nesting depth; deeper documents are rejected rather than
/// risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

/// Errors from [`Value::parse`] and [`crate::FromJson`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Malformed syntax at a byte offset.
    Syntax {
        /// Byte offset into the input where parsing failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally valid document that doesn't fit the target type.
    Type {
        /// What the converting type expected.
        message: String,
    },
}

impl JsonError {
    /// A [`JsonError::Type`] with the given message (used by `FromJson`
    /// impls and the `json_struct!` macro).
    pub fn type_error(message: impl Into<String>) -> Self {
        JsonError::Type { message: message.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Type { message } => write!(f, "JSON type error: {message}"),
        }
    }
}

impl std::error::Error for JsonError {}

pub(crate) fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v << 4 | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[start + negative as usize] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(if i == 0 { Value::UInt(0) } else { Value::Int(i) });
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("-0").unwrap(), Value::UInt(0));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::UInt(u64::MAX));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn integer_overflow_falls_back_to_float() {
        assert_eq!(
            parse("18446744073709551616").unwrap(),
            Value::Float(18446744073709551616.0)
        );
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041""#).unwrap(),
            Value::Str("a\n\t\"\\A".into())
        );
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[1,{"b":null},-2.5],"c":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "01", "1.", "+1", "nul", "\"abc", "\"\u{1}\"",
            "[1] trailing", "{'a':1}", "[1,]", "--1", "\"\\q\"", "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
