#![warn(missing_docs)]

//! A small JSON library: one [`Value`] type, a strict parser, compact and
//! pretty writers, and [`ToJson`]/[`FromJson`] traits with a macro for
//! mechanical struct impls.
//!
//! This replaces `serde`/`serde_json` under the workspace's std-only
//! dependency firewall (see `crates/check`). It intentionally covers only
//! what the repo needs: results files, trace headers/records, experiment
//! reports. Numbers keep integer fidelity (`u64`/`i64` don't round-trip
//! through `f64`), object key order is preserved, and non-finite floats
//! serialize as `null` (JSON has no NaN).
//!
//! ```
//! use sc_json::Value;
//! let v = Value::parse(r#"{"name":"t","groups":4,"ok":true}"#).unwrap();
//! assert_eq!(v.get("groups").and_then(Value::as_u64), Some(4));
//! assert_eq!(v.to_string(), r#"{"name":"t","groups":4,"ok":true}"#);
//! ```

mod parse;
mod traits;
mod write;

pub use parse::JsonError;
pub use traits::{FromJson, ToJson};

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (parsed from a leading `-` without `.`/`e`).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// Any number with a fraction or exponent, or outside integer range.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved and duplicate keys keep
    /// the last occurrence on lookup.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        parse::parse(text)
    }

    /// Member lookup on an object; `None` for other variants or missing
    /// keys. Duplicate keys resolve to the last occurrence.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The field slice, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fs) => Some(fs),
            _ => None,
        }
    }

    /// Compact serialization (no added whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write::write_compact(self, &mut out);
        out
    }

    /// Pretty serialization with two-space indentation and a stable
    /// layout, matching what the results files used to look like.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, 0, &mut out);
        out
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Build a [`Value::Object`] from `"key" => expr` pairs; each value goes
/// through [`ToJson`].
///
/// ```
/// use sc_json::{obj, ToJson};
/// let v = obj! { "scheme" => "icp", "hit_ratio" => 0.42 };
/// assert_eq!(v.to_string(), r#"{"scheme":"icp","hit_ratio":0.42}"#);
/// ```
#[macro_export]
macro_rules! obj {
    ( $( $key:expr => $val:expr ),* $(,)? ) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::ToJson::to_json(&$val)) ),*
        ])
    };
}

/// Implement [`ToJson`] and [`FromJson`] for a plain named-field struct.
/// Missing fields on read fall back to `Default::default()` (the moral
/// equivalent of `#[serde(default)]`, which the old derives relied on).
///
/// ```
/// #[derive(Default, PartialEq, Debug)]
/// struct Row { name: String, count: u64 }
/// sc_json::json_struct!(Row { name, count });
///
/// use sc_json::{FromJson, ToJson, Value};
/// let row = Row { name: "a".into(), count: 3 };
/// let back = Row::from_json(&row.to_json()).unwrap();
/// assert_eq!(back, row);
/// ```
#[macro_export]
macro_rules! json_struct {
    ( $ty:ty { $( $field:ident ),* $(,)? } ) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)) ),*
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                if v.as_object().is_none() {
                    return Err($crate::JsonError::type_error(concat!(
                        "expected object for ",
                        stringify!($ty)
                    )));
                }
                Ok(Self {
                    $( $field: match v.get(stringify!($field)) {
                        Some(f) => $crate::FromJson::from_json(f)?,
                        None => Default::default(),
                    } ),*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_prefers_last_duplicate() {
        let v = Value::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn accessors_cross_convert_numbers() {
        assert_eq!(Value::UInt(7).as_i64(), Some(7));
        assert_eq!(Value::Int(-7).as_u64(), None);
        assert_eq!(Value::UInt(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(1.5).as_u64(), None);
    }

    #[test]
    fn obj_macro_shape() {
        let v = obj! { "x" => 1u32, "y" => vec![1u64, 2], "s" => "hi" };
        assert_eq!(v.to_string(), r#"{"x":1,"y":[1,2],"s":"hi"}"#);
    }

    #[derive(Default, Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: String,
        c: f64,
    }
    json_struct!(Demo { a, b, c });

    #[test]
    fn struct_macro_roundtrip_and_default() {
        let d = Demo { a: 4, b: "x".into(), c: 0.5 };
        let v = d.to_json();
        assert_eq!(Demo::from_json(&v).unwrap(), d);
        // Missing field -> Default, like #[serde(default)].
        let partial = Value::parse(r#"{"a":9}"#).unwrap();
        let got = Demo::from_json(&partial).unwrap();
        assert_eq!(got, Demo { a: 9, b: String::new(), c: 0.0 });
        // Non-object input is a type error.
        assert!(Demo::from_json(&Value::Null).is_err());
    }
}
