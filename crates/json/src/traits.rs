//! Conversions between Rust values and [`Value`].

use crate::{JsonError, Value};

/// Serialize into a [`Value`] (the replacement for `serde::Serialize`
/// at the fidelity this workspace needs).
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Deserialize from a [`Value`] (the replacement for
/// `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Reconstruct from a JSON value.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::type_error("expected bool"))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| {
                    JsonError::type_error(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    JsonError::type_error(concat!(stringify!($t), " out of range"))
                })
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let i = v.as_i64().ok_or_else(|| {
                    JsonError::type_error(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    JsonError::type_error(concat!(stringify!($t), " out of range"))
                })
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::type_error("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::type_error("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::type_error("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_fidelity() {
        assert_eq!(u64::MAX.to_json(), Value::UInt(u64::MAX));
        assert_eq!(u64::from_json(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
        assert_eq!((-5i64).to_json(), Value::Int(-5));
        assert_eq!(5i64.to_json(), Value::UInt(5));
        assert!(u8::from_json(&Value::UInt(256)).is_err());
        assert!(u32::from_json(&Value::Int(-1)).is_err());
    }

    #[test]
    fn collections_and_options() {
        let v = vec![1u32, 2, 3].to_json();
        assert_eq!(Vec::<u32>::from_json(&v).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Value::UInt(4)).unwrap(), Some(4));
        assert_eq!(None::<u32>.to_json(), Value::Null);
    }

    #[test]
    fn numbers_cross_read_as_f64() {
        assert_eq!(f64::from_json(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f64::from_json(&Value::Float(0.5)).unwrap(), 0.5);
        assert!(f64::from_json(&Value::Str("x".into())).is_err());
    }
}
