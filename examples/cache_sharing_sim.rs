//! A Fig. 1-style experiment on a small synthetic trace: how much does
//! cache sharing help, and how close does ICP-style simple sharing get
//! to a fully unified cache?
//!
//! Run with: `cargo run --release --example cache_sharing_sim`

use summary_cache::sim::{simulate_scheme, simulate_summary_cache, SchemeKind, SummaryCacheConfig};
use summary_cache::trace::{profile, TraceStats};
use summary_cache::core::{SummaryKind, UpdatePolicy};

fn main() {
    // A 1/10-scale UPisa-profile trace: 8 proxy groups, ~12k requests.
    let trace = profile("UPisa").expect("built-in profile").generate_scaled(10);
    let stats = TraceStats::compute(&trace);
    println!(
        "trace: {} requests, {} clients, {} unique docs, infinite cache {} MB, max hit {:.1}%",
        stats.requests,
        stats.clients,
        stats.unique_documents,
        stats.infinite_cache_bytes >> 20,
        stats.max_hit_ratio * 100.0
    );

    // Section II methodology: total cache = 10% of the infinite size.
    let budget = stats.infinite_cache_bytes / 10;
    println!("\nscheme         total hit ratio   (cache = 10% of infinite, split 8 ways)");
    for scheme in SchemeKind::all() {
        let m = simulate_scheme(&trace, scheme, budget);
        println!(
            "{:<12}   {:>8.2}%",
            scheme.label(),
            m.rates().total_hit_ratio * 100.0
        );
    }

    // And the protocol itself: summary cache at the recommended config,
    // with the ICP message model from the same pass.
    let cfg = SummaryCacheConfig {
        kind: SummaryKind::recommended(),
        policy: UpdatePolicy::EveryRequests(50),
        multicast_updates: false,
    };
    let r = simulate_summary_cache(&trace, &cfg, budget);
    let rates = r.metrics.rates();
    println!("\nsummary cache (bloom lf=8, k=4, update every 50 requests):");
    println!("  total hit ratio     {:>8.2}%", rates.total_hit_ratio * 100.0);
    println!("  false hits          {:>8.2}%", rates.false_hit_ratio * 100.0);
    println!("  false misses        {:>8.2}%", rates.false_miss_ratio * 100.0);
    println!(
        "  messages/request    {:>8.4}  (ICP would send {:.4})",
        rates.messages_per_request,
        r.icp_queries as f64 / r.metrics.requests as f64
    );
    println!(
        "  message reduction   {:>7.1}x",
        r.icp_queries as f64 / (r.metrics.queries_sent + r.metrics.update_messages) as f64
    );
}
