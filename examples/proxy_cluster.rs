//! A live 4-proxy SC-ICP cluster on loopback: spin up the daemons and
//! an origin emulator, replay a shared workload, and watch summary
//! updates turn neighbour caches into remote hits.
//!
//! Run with: `cargo run --release --example proxy_cluster`

use std::time::Duration;
use summary_cache::proxy::{
    BenchmarkConfig, Cluster, ClusterConfig, Mode, ReplayMode,
};
use summary_cache::trace::{GeneratorConfig, TraceGenerator};

fn main() -> std::io::Result<()> {
    // A workload whose clients *share* documents across proxy groups,
    // so cooperation has something to find.
    let trace = TraceGenerator::new(GeneratorConfig {
        name: "cluster-demo".into(),
        requests: 4_000,
        clients: 40,
        documents: 800,
        groups: 4,
        mean_gap_ms: 1.0,
        ..Default::default()
    })
    .generate();

    for mode in [Mode::NoIcp, Mode::Icp, Mode::summary_cache_default()] {
        let cfg = ClusterConfig {
            proxies: 4,
            mode,
            cache_bytes: 16 << 20,
            expected_docs: 2_000,
            origin_delay: Duration::from_millis(20),
            icp_timeout_ms: 300,
            keepalive_ms: 0,
            update_loss: 0.0,
        };
        let cluster = Cluster::start(&cfg)?;
        let wall = cluster.run_replay(&trace, 5, ReplayMode::PerClient)?;
        let t = cluster.aggregate();
        println!(
            "{:<7}  hit {:>5.1}%  remote {:>5.1}%  latency {:>6.2} ms  UDP msgs {:>6}  wall {:.2}s",
            mode.label(),
            t.hit_ratio() * 100.0,
            t.remote_hits as f64 / t.http_requests as f64 * 100.0,
            t.avg_latency_ms(),
            t.udp_messages(),
            wall.as_secs_f64(),
        );
        cluster.shutdown();
    }

    // The Table II worst case, in miniature: disjoint streams, so every
    // ICP query is pure overhead.
    println!("\nworst case (no shared documents):");
    for mode in [Mode::Icp, Mode::summary_cache_default()] {
        let cfg = ClusterConfig {
            proxies: 4,
            mode,
            cache_bytes: 16 << 20,
            expected_docs: 2_000,
            origin_delay: Duration::from_millis(5),
            icp_timeout_ms: 300,
            keepalive_ms: 0,
            update_loss: 0.0,
        };
        let cluster = Cluster::start(&cfg)?;
        cluster
            .run_benchmark(&BenchmarkConfig {
                clients_per_proxy: 5,
                requests_per_client: 50,
                target_hit_ratio: 0.3,
                size_pareto: (1.1, 512, 64 * 1024),
                seed: 7,
            })?;
        let t = cluster.aggregate();
        println!(
            "{:<7}  queries sent {:>6}  updates sent {:>5}  (all pure overhead here)",
            mode.label(),
            t.icp_queries_sent,
            t.updates_sent,
        );
        cluster.shutdown();
    }
    Ok(())
}
