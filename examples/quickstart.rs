//! Quickstart: the summary-cache idea in sixty lines.
//!
//! Two proxies keep Bloom-filter summaries of each other's cache
//! directories. A miss probes the summaries first and queries only
//! promising peers — the paper's replacement for ICP's query-everyone.
//!
//! Run with: `cargo run --example quickstart`

use summary_cache::bloom::analysis;
use summary_cache::core::{PeerTable, ProxySummary, SummaryKind, UpdatePolicy};

fn main() {
    // Proxy B summarizes its directory at the paper's recommended
    // configuration: a Bloom filter with 8 bits per document, 4 hashes.
    let kind = SummaryKind::recommended();
    let mut proxy_b = ProxySummary::new(kind, 64 << 20); // 64 MB cache

    // B caches some documents…
    for doc in ["/index.html", "/logo.png", "/news/today.html"] {
        let url = format!("http://b-site.example{doc}");
        proxy_b.insert(url.as_bytes(), b"b-site.example");
    }

    // …and publishes its summary when the update policy fires (here:
    // the paper's 1% threshold, trivially exceeded by a cold cache).
    let policy = UpdatePolicy::recommended();
    assert!(policy.should_publish(proxy_b.fresh_docs(), proxy_b.docs(), 3, 0));
    let update = proxy_b.publish();
    println!(
        "proxy B published {} bit flips ({} bytes on the wire)",
        update.changes, update.update_bytes
    );

    // Proxy A holds B's snapshot in its peer table.
    let mut peers = PeerTable::new();
    peers.install(1, proxy_b.snapshot_published());

    // A's local miss for a document B has: the probe says "ask B".
    let hit = peers.probe_all(b"http://b-site.example/index.html", b"b-site.example");
    println!("probe for /index.html      -> query peers {hit:?}");
    assert_eq!(hit, vec![1]);

    // A's local miss for a document nobody has: no queries at all —
    // where ICP would have multicast to every neighbour.
    let miss = peers.probe_all(b"http://elsewhere.example/x", b"elsewhere.example");
    println!("probe for unknown document -> query peers {miss:?} (ICP would ask everyone)");
    assert!(miss.is_empty());

    // The price: a known, tunable false-positive rate.
    let p = analysis::false_positive_probability_asymptotic(8.0, 4);
    println!(
        "false-positive probability at load factor 8, k=4: {:.2}% (paper: ~2%)",
        p * 100.0
    );
    println!(
        "memory for B's summary at A: {} bytes for {} documents",
        peers.memory_bytes(),
        proxy_b.docs()
    );
}
