//! Sizing a summary for a deployment: the Section V-F arithmetic as a
//! planning tool, plus an empirical check of the false-positive math
//! against a real filter.
//!
//! Run with: `cargo run --release --example bloom_tuning`

use summary_cache::bloom::{analysis, BloomFilter, FilterConfig};
use summary_cache::core::scalability::{estimate, Deployment};

fn main() {
    // Plan: 16 proxies with 8 GB caches — what does each load factor
    // cost, and what does it buy?
    println!("deployment: 16 proxies x 8 GB cache, 1% update threshold\n");
    println!(
        "{:>11} {:>8} {:>14} {:>16} {:>14}",
        "load factor", "k_opt", "p(false pos)", "summary memory", "peer mem/proxy"
    );
    for lf in [4u32, 8, 16, 32] {
        let k = analysis::optimal_k(lf as f64);
        let e = estimate(Deployment {
            proxies: 16,
            cache_bytes: 8 << 30,
            load_factor: lf,
            hashes: k,
            threshold: 0.01,
        });
        println!(
            "{:>11} {:>8} {:>13.4}% {:>13} KiB {:>13} MB",
            lf,
            k,
            e.false_positive_per_summary * 100.0,
            e.summary_bytes >> 10,
            e.peer_memory_bytes >> 20,
        );
    }

    // Check the math against an actual filter: insert 100k keys at load
    // factor 8 / k=4 and measure the observed false-positive rate.
    let n = 100_000u32;
    let cfg = FilterConfig::with_load_factor(n as usize, 8, 4);
    let mut f = BloomFilter::new(cfg);
    for i in 0..n {
        f.insert(format!("http://s{}.example/{}", i % 997, i).as_bytes());
    }
    let probes = 200_000u32;
    let fp = (0..probes)
        .filter(|i| f.contains(format!("http://t{}.example/{}", i % 997, i).as_bytes()))
        .count();
    println!(
        "\nempirical check at load factor 8, k=4: predicted {:.3}%, filter model {:.3}%, observed {:.3}%",
        analysis::false_positive_probability_asymptotic(8.0, 4) * 100.0,
        f.false_positive_rate() * 100.0,
        fp as f64 / probes as f64 * 100.0,
    );
    println!(
        "filter: {} bits, fill ratio {:.3}, {} bytes shipped per full update",
        cfg.bits,
        f.fill_ratio(),
        f.byte_len(),
    );
}
