//! Section VI-B failure handling, live: a silent peer's summary
//! replica is dropped (no more candidates point at it), and a peer
//! heard again after a failure receives a full-bitmap
//! reinitialization.

use std::net::UdpSocket;
use std::time::{Duration, Instant};
use summary_cache::cache::DocMeta;
use summary_cache::proxy::client::ProxyClient;
use summary_cache::proxy::router::DirectoryInspect;
use summary_cache::proxy::{Cluster, ClusterConfig, Mode};
use summary_cache::wire::icp::{DirContent, IcpMessage};

fn sc_mode() -> Mode {
    Mode::SummaryCache {
        load_factor: 16,
        hashes: 4,
        policy: summary_cache::core::UpdatePolicy::Threshold(0.0),
    }
}

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        proxies: 2,
        mode: sc_mode(),
        cache_bytes: 8 << 20,
        expected_docs: 1_000,
        origin_delay: Duration::from_millis(1),
        icp_timeout_ms: 200,
        keepalive_ms: 50, // failure threshold = 3 periods = 150 ms
        update_loss: 0.0,
    }
}

#[test]
fn silent_peer_replica_is_evicted() {
    let cluster = Cluster::start(&cluster_cfg()).unwrap();
    // Traffic from proxy 1 populates proxy 0's replica of it.
    let mut c1 =
        ProxyClient::connect(cluster.daemons[1].http_addr, cluster.daemons[1].stats.clone())
            .unwrap();
    c1.get(
        "http://server-1.trace.invalid/doc/1",
        DocMeta { size: 500, last_modified: 1 },
    )
    .unwrap();
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
            cluster.daemons[0].replicated_peers() == vec![1]
        }),
        "proxy 0 replicated proxy 1's summary"
    );

    // Proxy 1 dies; after >3 keep-alive periods proxy 0 must drop it.
    cluster.daemons[1].shutdown();
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
            cluster.daemons[0].replicated_peers().is_empty()
                && cluster.daemons[0].stats.snapshot().peer_failures >= 1
        }),
        "failed peer's replica evicted"
    );
    cluster.origin.shutdown();
    cluster.daemons[0].shutdown();
}

/// The tentpole acceptance scenario: a 4-proxy SC cluster whose update
/// datagrams suffer 5% injected loss must not drift — every daemon's
/// replica of every peer reconverges to that peer's published bitmap,
/// because seq gaps are detected and answered with full-bitmap resyncs.
#[test]
fn lossy_cluster_reconverges_via_resync() {
    let cfg = ClusterConfig {
        proxies: 4,
        mode: sc_mode(),
        cache_bytes: 8 << 20,
        expected_docs: 2_000,
        origin_delay: Duration::from_millis(1),
        icp_timeout_ms: 200,
        keepalive_ms: 50, // heartbeat doubles as the gap detector
        update_loss: 0.05,
    };
    let cluster = Cluster::start(&cfg).unwrap();

    // Disjoint streams: each proxy caches (and publishes) 120 unique
    // documents, so every publish is a delta some peer may lose.
    let mut drivers = Vec::new();
    for (pid, d) in cluster.daemons.iter().enumerate() {
        let addr = d.http_addr;
        let stats = d.stats.clone();
        drivers.push(std::thread::spawn(move || {
            let mut c = ProxyClient::connect(addr, stats).unwrap();
            for i in 0..120 {
                let url = format!("http://server-{pid}.trace.invalid/doc/{i}");
                c.get(&url, DocMeta { size: 400, last_modified: 1 }).unwrap();
            }
        }));
    }
    for h in drivers {
        h.join().unwrap();
    }

    // Traffic has stopped; only heartbeats (and resyncs they trigger)
    // remain. Poll until every directed (observer, publisher) pair
    // agrees bit-for-bit — transient desync windows between a lost
    // datagram and its resync are expected, permanent drift is not.
    // (This is the live twin of the simnet's quiescence check.)
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(10), Duration::from_millis(20), || {
            cluster.daemons.iter().enumerate().all(|(i, observer)| {
                cluster.daemons.iter().enumerate().all(|(j, publisher)| {
                    i == j
                        || observer.replica_bits(j as u32).as_ref()
                            == publisher.published_bits().as_ref()
                })
            })
        }),
        "replicas drifted and never reconverged"
    );

    // 480 publishes x 3 peers at 5% loss: gaps were certainly seen, and
    // every gap must have ended in a resync.
    let totals = cluster.aggregate();
    assert!(totals.update_gaps > 0, "loss produced no detected gaps: {totals:?}");
    assert!(totals.replica_resyncs > 0, "no replica was ever resynced: {totals:?}");
    assert!(totals.resync_requests > 0, "no DIRREQ was ever sent: {totals:?}");
    cluster.shutdown();
}

#[test]
fn recovered_peer_receives_full_bitmap() {
    let mut cluster = Cluster::start(&cluster_cfg()).unwrap();
    let peer1_icp = cluster.daemons[1].icp_addr;
    // Take proxy 1 out of the cluster so its sockets can actually close
    // once its threads observe the shutdown.
    let d1 = cluster.daemons.remove(1);
    let d0 = &cluster.daemons[0];

    // Proxy 0 caches something so its summary is non-empty.
    let mut c0 = ProxyClient::connect(d0.http_addr, d0.stats.clone()).unwrap();
    c0.get(
        "http://server-0.trace.invalid/doc/9",
        DocMeta { size: 500, last_modified: 1 },
    )
    .unwrap();

    // Kill proxy 1 (dropping the handle releases its sockets once the
    // threads observe the signal) and wait for proxy 0 to declare it
    // failed.
    d1.shutdown();
    drop(d1);
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
            d0.stats.snapshot().peer_failures >= 1
        }),
        "peer 1 declared failed"
    );

    // "Restart" proxy 1: bind a fresh socket on its old ICP port and
    // send a keep-alive. Proxy 0 must answer with a DIRFULL
    // reinitialization of its own directory.
    let revived = UdpSocket::bind(peer1_icp).expect("rebind the dead peer's ICP port");
    revived
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let hello = IcpMessage::Secho {
        request_number: 0,
        url: String::new(),
    }
    .encode(1)
    .unwrap();
    revived.send_to(&hello, d0.icp_addr).unwrap();

    let mut buf = vec![0u8; 65536];
    let deadline = Instant::now() + Duration::from_secs(2);
    let full = loop {
        assert!(
            Instant::now() < deadline,
            "full bitmap arrives after recovery"
        );
        let n = match revived.recv_from(&mut buf) {
            Ok((n, _)) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("recv failed: {e}"),
        };
        if let Ok(IcpMessage::DirUpdate { update, .. }) = IcpMessage::decode(&buf[..n]) {
            if let DirContent::Bitmap(words) = update.content {
                break words;
            }
        }
    };
    assert!(
        full.iter().any(|&w| w != 0),
        "reinitialization carries proxy 0's non-empty directory"
    );
    // The datagram can outrun the sender's own counter update by a few
    // instructions; give the accounting a moment.
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(2), Duration::from_millis(5), || {
            d0.stats.snapshot().peer_recoveries >= 1
        }),
        "recovery was counted"
    );
    cluster.origin.shutdown();
    d0.shutdown();
}
