//! Adversarial workload scenarios: the seeded regression suite.
//!
//! Each canned scenario (flash crowd, diurnal drift, peer churn at
//! scale, false-hit storm, two-level hierarchy) runs on the
//! deterministic simnet and pins its good-ruler headline numbers —
//! hit/false-hit/staleness counts, message distribution, virtual tail
//! latency — **bit for bit**. A seed is a complete schedule, so any
//! divergence is a real behavior change, and every failure prints a
//! one-line repro.
//!
//! Environment knobs (the sweep tests only; pinned tests are hermetic):
//!
//! * `SC_SIM_SEED=0x2a` (hex or decimal) — replay exactly one seed;
//! * `SC_SIM_SEEDS=200` — sweep size (default 10; `scripts/ci.sh
//!   --soak` runs 200);
//! * `SC_SIM_PEERS=64` — cluster size for the sweep (default 4).

use std::collections::BTreeSet;
use summary_cache::proxy::simnet::{
    run_scenario, stale_advertised_pairs, ScenarioConfig, ScenarioReport, SimConfig,
};
use summary_cache::sim::hierarchy::filter_effect;
use summary_cache::trace::scenario::{self, Scenario, ScenarioKind};
use summary_cache::trace::TraceStats;

const DEFAULT_SWEEP_SEEDS: u64 = 10;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// The hermetic config every pinned test runs under: the default
/// fault plan with every knob written out literally, so no `SC_SIM_*`
/// environment override can shift a pinned number. (`proxies` is
/// overwritten by each scenario's node count; `shards` is pinned to 1,
/// and the router's determinism contract makes any shard count produce
/// the same journal anyway.)
fn pinned_cfg() -> ScenarioConfig {
    ScenarioConfig {
        sim: SimConfig {
            proxies: 8,
            local_ops: 0,
            horizon_ms: 2_000,
            keepalive_ms: 50,
            cache_docs: 48,
            expected_docs: 64,
            load_factor: 8,
            hashes: 4,
            loss: 0.12,
            duplicate: 0.08,
            delay_us: (200, 40_000),
            crashes: 2,
            partitions: 2,
            settle_ticks: 400,
            shards: 1,
            fanout_slots: 1,
            initial_seq: 0,
        },
        windows: 8,
        origin_rtt_us: 120_000,
        local_service_us: 200,
    }
}

/// The headline numbers a pinned regression locks down.
#[derive(Debug, PartialEq, Eq)]
struct Headline {
    requests: u64,
    unserved: u64,
    local_hits: u64,
    remote_hits: u64,
    false_hits: u64,
    origin_fetches: u64,
    queries_sent: u64,
    wasted_queries: u64,
    evictions: u64,
    stale_after_settle: u64,
    latency_p50_us: u64,
    latency_p99_us: u64,
    update_datagrams: u64,
    resyncs: u64,
}

fn headline(r: &ScenarioReport) -> Headline {
    Headline {
        requests: r.requests,
        unserved: r.unserved,
        local_hits: r.local_hits,
        remote_hits: r.remote_hits,
        false_hits: r.false_hits,
        origin_fetches: r.origin_fetches,
        queries_sent: r.queries_sent,
        wasted_queries: r.wasted_queries,
        evictions: r.evictions,
        stale_after_settle: r.stale_advertised_after_settle,
        latency_p50_us: r.latency_p50_us,
        latency_p99_us: r.latency_p99_us,
        update_datagrams: r.datagrams_by_op[0].1 + r.datagrams_by_op[1].1,
        resyncs: r.resyncs_requested,
    }
}

/// Run one pinned scenario and compare against the recorded headline.
fn check_pinned(scenario: &Scenario, seed: u64, cfg: ScenarioConfig, want: Headline) {
    let out = run_scenario(cfg, seed, scenario);
    let r = &out.report;
    assert!(
        r.converged,
        "{} did not converge; repro: {}\n{}",
        r.name,
        r.repro(),
        r.render()
    );
    let got = headline(r);
    assert_eq!(
        got,
        want,
        "{} headline numbers drifted; repro: {}\n{}",
        r.name,
        r.repro(),
        r.render()
    );
    // The outcome accounting identity always holds, pinned or not.
    assert_eq!(
        r.local_hits + r.remote_hits + r.origin_fetches + r.unserved,
        r.requests
    );
}

#[test]
fn pinned_flash_crowd() {
    let scenario = scenario::flash_crowd(8, 0xF1A5);
    check_pinned(
        &scenario,
        0xF1A5,
        pinned_cfg(),
        Headline {
            requests: 2100,
            unserved: 57,
            local_hits: 1099,
            remote_hits: 406,
            false_hits: 26,
            origin_fetches: 538,
            queries_sent: 850,
            wasted_queries: 96,
            evictions: 0,
            stale_after_settle: 0,
            latency_p50_us: 200,
            latency_p99_us: 147456,
            update_datagrams: 2451,
            resyncs: 330,
        },
    );
}

#[test]
fn pinned_diurnal_drift() {
    let scenario = scenario::diurnal_drift(8, 0xD01F);
    check_pinned(
        &scenario,
        0xD01F,
        pinned_cfg(),
        Headline {
            requests: 2000,
            unserved: 106,
            local_hits: 488,
            remote_hits: 602,
            false_hits: 65,
            origin_fetches: 804,
            queries_sent: 1230,
            wasted_queries: 161,
            evictions: 0,
            stale_after_settle: 0,
            latency_p50_us: 94208,
            latency_p99_us: 163840,
            update_datagrams: 2156,
            resyncs: 232,
        },
    );
}

/// Peer churn at scale: rolling restarts at N = 64 riding the PR-8
/// per-peer update lanes, on top of the random fault plan.
#[test]
fn pinned_peer_churn_at_64() {
    let scenario = scenario::peer_churn(64, 0xC0DE);
    let mut cfg = pinned_cfg();
    // Quarter the tick rate: 64 proxies x 2 s of 50 ms heartbeats is
    // all datagram count, no extra coverage.
    cfg.sim.keepalive_ms = 200;
    check_pinned(
        &scenario,
        0xC0DE,
        cfg,
        Headline {
            requests: 1600,
            unserved: 14,
            local_hits: 203,
            remote_hits: 844,
            false_hits: 7,
            origin_fetches: 539,
            queries_sent: 5184,
            wasted_queries: 127,
            evictions: 0,
            stale_after_settle: 0,
            latency_p50_us: 90112,
            latency_p99_us: 126976,
            update_datagrams: 53146,
            resyncs: 10340,
        },
    );
}

#[test]
fn pinned_false_hit_storm() {
    let scenario = scenario::false_hit_storm(8, 0x57);
    check_pinned(
        &scenario,
        0x57,
        pinned_cfg(),
        Headline {
            requests: 1548,
            unserved: 73,
            local_hits: 751,
            remote_hits: 316,
            false_hits: 21,
            origin_fetches: 408,
            queries_sent: 720,
            wasted_queries: 90,
            evictions: 42,
            stale_after_settle: 0,
            latency_p50_us: 200,
            latency_p99_us: 147456,
            update_datagrams: 2470,
            resyncs: 319,
        },
    );
}

/// Two-level hierarchy: the same scenario runs on the simnet (peer
/// tier) *and* through `crates/sim`'s hierarchy model via
/// `Scenario::to_trace()`, pinning the filter-effect rows (how much
/// each sibling-sharing scheme starves the parent).
#[test]
fn pinned_two_level_hierarchy() {
    let scenario = scenario::two_level_hierarchy(8, 0x2113);
    check_pinned(
        &scenario,
        0x2113,
        pinned_cfg(),
        Headline {
            requests: 3000,
            unserved: 248,
            local_hits: 983,
            remote_hits: 731,
            false_hits: 89,
            origin_fetches: 1038,
            queries_sent: 1627,
            wasted_queries: 248,
            evictions: 0,
            stale_after_settle: 0,
            latency_p50_us: 81920,
            latency_p99_us: 163840,
            update_datagrams: 2185,
            resyncs: 195,
        },
    );
    // The hierarchy tier: pinned (child, sibling, parent, origin)
    // counts per sharing scheme.
    let trace = scenario.to_trace();
    let cap = TraceStats::compute(&trace).infinite_cache_bytes / 4;
    let rows: Vec<(String, u64, u64, u64, u64)> = filter_effect(&trace, cap, cap)
        .into_iter()
        .map(|(label, r)| {
            (
                label,
                r.child_hits,
                r.sibling_hits,
                r.parent_hits,
                r.origin_fetches,
            )
        })
        .collect();
    let want: Vec<(String, u64, u64, u64, u64)> = vec![
        ("no-sharing".into(), 840, 0, 963, 1197),
        ("bloom".into(), 840, 321, 646, 1193),
        ("exact-directory".into(), 840, 321, 646, 1193),
        ("server-name".into(), 840, 489, 476, 1195),
    ];
    assert_eq!(
        rows, want,
        "filter-effect rows drifted; repro: cargo test --test scenario_properties \
         pinned_two_level_hierarchy -- --nocapture"
    );
}

/// The counting-Bloom staleness probe (closes the loop on the PR-8
/// lost-recovery fix): after a false-hit storm quiesces under a
/// fault-free network, every advertised-but-evicted URL must be
/// cleared from **all** peer replicas — checked both through the
/// report counter and by independently re-walking every (observer,
/// evicted-URL) pair against the final cluster state. Load factor 16
/// keeps Bloom false positives out of the probe.
#[test]
fn storm_quiesces_with_every_stale_advertisement_cleared() {
    let seed = 0xB10B;
    let scenario = scenario::false_hit_storm(8, seed);
    let mut cfg = pinned_cfg();
    cfg.sim.loss = 0.0;
    cfg.sim.duplicate = 0.0;
    cfg.sim.crashes = 0;
    cfg.sim.partitions = 0;
    cfg.sim.delay_us = (200, 2_000);
    cfg.sim.load_factor = 16;
    cfg.sim.cache_docs = 512;
    let out = run_scenario(cfg, seed, &scenario);
    let r = &out.report;
    assert!(r.converged, "quiet storm must settle; repro: {}", r.repro());
    assert!(r.evictions > 0, "the storm evicted nothing:\n{}", r.render());
    assert!(
        r.false_hits > 0,
        "evict-everywhere produced no false hits:\n{}",
        r.render()
    );
    assert_eq!(
        r.stale_advertised_after_settle, 0,
        "stale advertisements survived settle; repro: {}\n{}",
        r.repro(),
        r.render()
    );
    // Independent recount from the final cluster state.
    let evicted: BTreeSet<String> = scenario
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            ScenarioKind::EvictEverywhere { .. } => e.kind.url_string(),
            _ => None,
        })
        .collect();
    assert!(!evicted.is_empty(), "the storm scenario must script evictions");
    for url in &evicted {
        assert_eq!(
            stale_advertised_pairs(&out.routers, &out.dirs, &out.up, url),
            0,
            "{url} still advertised by a replica after settle"
        );
    }
}

/// One sweep iteration: the scenario must converge under the full
/// fault plan with its accounting identities intact, and the report's
/// staleness counter must agree with an independent recount.
fn check_sweep_seed(name: &str, seed: u64) {
    let mut cfg = ScenarioConfig::default();
    if cfg.sim.proxies >= 16 {
        // At big N the 50 ms heartbeat is pure datagram volume over a
        // 2 s horizon; a 200 ms cadence keeps the sweep affordable
        // while every fault class still fires. Deterministic: depends
        // only on the SC_SIM_PEERS knob.
        cfg.sim.keepalive_ms = 200;
    }
    let nodes = cfg.sim.proxies as u32;
    let scenario = scenario::by_name(name, nodes, seed)
        .unwrap_or_else(|| panic!("unknown scenario {name}"));
    let out = run_scenario(cfg, seed, &scenario);
    let r = &out.report;
    assert!(
        r.converged,
        "{name} did not reconverge under the fault plan; repro: {}",
        r.repro()
    );
    assert_eq!(r.requests, scenario.requests(), "{name}: requests lost");
    assert_eq!(
        r.local_hits + r.remote_hits + r.origin_fetches + r.unserved,
        r.requests,
        "{name}: outcomes must partition the requests"
    );
    let by_window: u64 = r.windows.iter().map(|w| w.requests).sum();
    assert_eq!(by_window, r.requests, "{name}: window slices must partition");
    let recount: u64 = scenario
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            ScenarioKind::EvictEverywhere { .. } => e.kind.url_string(),
            _ => None,
        })
        .collect::<BTreeSet<String>>()
        .iter()
        .map(|url| stale_advertised_pairs(&out.routers, &out.dirs, &out.up, url))
        .sum();
    assert_eq!(
        recount, r.stale_advertised_after_settle,
        "{name}: report staleness disagrees with the cluster state"
    );
}

/// The acceptance sweep: false-hit storm and peer churn under the
/// full loss/dup/reorder/crash/partition plan. CI runs this at
/// `SC_SIM_PEERS=64` x 10 seeds; `--soak` raises it to 200.
#[test]
fn scenario_fault_sweep() {
    for name in ["false-hit-storm", "peer-churn"] {
        if let Some(seed) = env_u64("SC_SIM_SEED") {
            check_sweep_seed(name, seed);
            continue;
        }
        let seeds = env_u64("SC_SIM_SEEDS").unwrap_or(DEFAULT_SWEEP_SEEDS);
        for seed in 0..seeds {
            let outcome = std::panic::catch_unwind(|| check_sweep_seed(name, seed));
            if let Err(cause) = outcome {
                eprintln!(
                    "scenario {name} seed {seed:#x} failed; repro: \
                     SC_SIM_SEED={seed:#x} cargo test --test scenario_properties \
                     scenario_fault_sweep -- --nocapture"
                );
                std::panic::resume_unwind(cause);
            }
        }
    }
}

/// Every canned scenario is deterministic end to end: same seed, same
/// journal, same report — and a different seed moves the numbers.
#[test]
fn scenario_reports_are_deterministic_and_seed_sensitive() {
    for name in scenario::scenario_names() {
        let build = |seed: u64| {
            let s = scenario::by_name(name, 4, seed).expect("canned name");
            run_scenario(ScenarioConfig::default(), seed, &s)
        };
        let a = build(11);
        let b = build(11);
        assert_eq!(a.sim.journal, b.sim.journal, "{name}: journal diverged");
        assert_eq!(a.report, b.report, "{name}: report diverged");
        let c = build(12);
        assert_ne!(
            a.sim.journal, c.sim.journal,
            "{name}: seed 12 replayed seed 11's schedule"
        );
    }
}
