//! Trace persistence integration: a generated profile survives a trip
//! through both file formats with its statistics intact, so experiments
//! can be re-run from archived traces.

use summary_cache::trace::{io, profile, TraceStats};

#[test]
fn jsonl_file_roundtrip_preserves_statistics() {
    let trace = profile("UCB").unwrap().generate_scaled(50);
    let stats = TraceStats::compute(&trace);

    let dir = std::env::temp_dir().join("summary-cache-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ucb.jsonl");

    io::save_jsonl(&trace, std::fs::File::create(&path).unwrap()).unwrap();
    let back = io::load_jsonl(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back, trace);
    assert_eq!(TraceStats::compute(&back), stats);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn log_file_roundtrip_preserves_statistics() {
    let trace = profile("Questnet").unwrap().generate_scaled(50);
    let dir = std::env::temp_dir().join("summary-cache-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("questnet.log");

    io::save_log(&trace, std::fs::File::create(&path).unwrap()).unwrap();
    let back = io::load_log(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.name, "Questnet");
    assert_eq!(back.groups, 12);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn formats_agree_with_each_other() {
    let trace = profile("DEC").unwrap().generate_scaled(100);
    let mut jsonl = Vec::new();
    io::save_jsonl(&trace, &mut jsonl).unwrap();
    let mut log = Vec::new();
    io::save_log(&trace, &mut log).unwrap();
    let a = io::load_jsonl(jsonl.as_slice()).unwrap();
    let b = io::load_log(log.as_slice()).unwrap();
    assert_eq!(a, b);
}
