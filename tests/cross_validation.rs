//! Cross-validation between independent implementations: the scheme
//! simulator (which consults peer caches directly, as ICP effectively
//! does) and the summary-cache simulator configured so that summaries
//! are exact and always fresh. Under those settings the two must agree
//! *exactly* — any divergence is a bug in one of them.

use sc_util::prop::{check, vec_of};
use summary_cache::core::{SummaryKind, UpdatePolicy};
use summary_cache::sim::{
    simulate_scheme, simulate_summary_cache, SchemeKind, SummaryCacheConfig,
};
use summary_cache::trace::{profile, Request, Trace, TraceStats};

fn fresh_exact() -> SummaryCacheConfig {
    SummaryCacheConfig {
        kind: SummaryKind::ExactDirectory,
        policy: UpdatePolicy::Threshold(0.0), // publish after every insert
        multicast_updates: false,
    }
}

#[test]
fn fresh_exact_summaries_equal_simple_sharing_on_profile() {
    let trace = profile("UPisa").unwrap().generate_scaled(10);
    let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
    let scheme = simulate_scheme(&trace, SchemeKind::SimpleSharing, budget);
    let summary = simulate_summary_cache(&trace, &fresh_exact(), budget);
    assert_eq!(scheme.local_hits, summary.metrics.local_hits);
    assert_eq!(scheme.remote_hits, summary.metrics.remote_hits);
    assert_eq!(scheme.local_stale_hits, summary.metrics.local_stale_hits);
    assert_eq!(summary.metrics.false_misses, 0, "fresh summaries never false-miss");
    assert_eq!(summary.metrics.false_hits, 0, "exact fresh summaries never false-hit");
}

/// The equivalence holds on arbitrary small traces, including nasty
/// interleavings of versions, clients and sizes.
#[test]
fn prop_fresh_exact_equals_simple_sharing() {
    check("prop_fresh_exact_equals_simple_sharing", 64, |rng| {
        let ops = vec_of(rng, 1..400, |r| {
            (
                r.gen_range(0u32..8),
                r.gen_range(0u64..30),
                r.gen_range(1u64..2000),
                r.gen_range(0u64..3),
            )
        });
        let requests: Vec<Request> = ops
            .iter()
            .enumerate()
            .map(|(i, &(client, url, size_seed, version))| Request {
                time_ms: i as u64,
                client,
                url,
                server: (url / 4) as u32,
                // One size per (url, version) so staleness is driven by
                // last_modified alone, as in real traces.
                size: 100 + (url * 37 + version * 13) % size_seed.max(1),
                last_modified: version,
            })
            .collect();
        let trace = Trace {
            name: "prop".into(),
            groups: 4,
            requests,
        };
        let budget = 20_000u64;
        let scheme = simulate_scheme(&trace, SchemeKind::SimpleSharing, budget);
        let summary = simulate_summary_cache(&trace, &fresh_exact(), budget);
        assert_eq!(scheme.local_hits, summary.metrics.local_hits);
        assert_eq!(scheme.remote_hits, summary.metrics.remote_hits);
        assert_eq!(scheme.local_stale_hits, summary.metrics.local_stale_hits);
        assert_eq!(scheme.remote_stale_hits, summary.metrics.remote_stale_hits);
        assert_eq!(summary.metrics.false_hits, 0);
        assert_eq!(summary.metrics.false_misses, 0);
    });
}

/// Metric conservation: every request is exactly one of
/// {local hit, remote hit, miss}; byte accounting follows.
#[test]
fn prop_metrics_conserved() {
    check("prop_metrics_conserved", 64, |rng| {
        let ops = vec_of(rng, 1..300, |r| {
            (r.gen_range(0u32..6), r.gen_range(0u64..40))
        });
        let threshold = rng.gen_f64() * 0.2;
        let requests: Vec<Request> = ops
            .iter()
            .enumerate()
            .map(|(i, &(client, url))| Request {
                time_ms: i as u64,
                client,
                url,
                server: (url / 4) as u32,
                size: 200 + url * 7,
                last_modified: 0,
            })
            .collect();
        let trace = Trace { name: "c".into(), groups: 3, requests };
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::Bloom { load_factor: 8, hashes: 4 },
            policy: UpdatePolicy::Threshold(threshold),
            multicast_updates: false,
        };
        let r = simulate_summary_cache(&trace, &cfg, 50_000);
        let m = &r.metrics;
        assert_eq!(m.requests, trace.requests.len() as u64);
        assert!(m.local_hits + m.remote_hits <= m.requests);
        assert!(m.hit_bytes <= m.requested_bytes);
        // False hits and remote hits both require queries.
        assert!(m.queries_sent >= m.remote_hits);
        assert!(m.wasted_queries <= m.queries_sent);
        // Bloom summaries cannot false-miss *fresh* state beyond update
        // lag with threshold 0 — but with arbitrary thresholds we can
        // only bound: false misses never exceed total misses.
        assert!(m.false_misses <= m.requests - m.local_hits - m.remote_hits);
    });
}
