//! Cross-crate integration: trace generation → simulators → the
//! paper's qualitative claims, end to end.

use summary_cache::core::{SummaryKind, UpdatePolicy};
use summary_cache::sim::{
    simulate_scheme, simulate_summary_cache, SchemeKind, SummaryCacheConfig,
};
use summary_cache::trace::{profile, TraceStats};

fn upisa() -> (summary_cache::trace::Trace, u64) {
    let trace = profile("UPisa").expect("profile").generate_scaled(10);
    let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
    (trace, budget)
}

/// Fig. 1's headline: sharing schemes beat no-sharing decisively and
/// land within a band of the unified global cache.
#[test]
fn sharing_beats_isolation_on_every_profile() {
    for name in ["UPisa", "NLANR"] {
        let trace = profile(name).unwrap().generate_scaled(20);
        let budget = TraceStats::compute(&trace).infinite_cache_bytes / 10;
        let hit = |s| simulate_scheme(&trace, s, budget).rates().total_hit_ratio;
        let none = hit(SchemeKind::NoSharing);
        let simple = hit(SchemeKind::SimpleSharing);
        let global = hit(SchemeKind::Global);
        assert!(simple > none + 0.05, "{name}: {simple} vs {none}");
        assert!(
            (simple - global).abs() < 0.12,
            "{name}: simple {simple} should track global {global}"
        );
    }
}

/// Fig. 2's headline: hit-ratio degradation grows with the update
/// threshold, and is small at 1%.
#[test]
fn update_delay_degrades_gracefully() {
    let (trace, budget) = upisa();
    let run = |t: f64| {
        let cfg = SummaryCacheConfig {
            kind: SummaryKind::ExactDirectory,
            policy: UpdatePolicy::Threshold(t),
            multicast_updates: false,
        };
        simulate_summary_cache(&trace, &cfg, budget)
            .metrics
            .rates()
            .total_hit_ratio
    };
    let fresh = run(0.0);
    let one = run(0.01);
    let ten = run(0.10);
    assert!(one <= fresh + 1e-9 && ten <= one + 1e-9, "monotone: {fresh} {one} {ten}");
    assert!(fresh - one < 0.02, "1% threshold costs little: {}", fresh - one);
    assert!(fresh - ten < 0.08, "even 10% is survivable: {}", fresh - ten);
}

/// Fig. 6's ordering: false hits — server-name ≫ bloom-8 > bloom-16 >
/// bloom-32 ≥ exact-directory.
#[test]
fn false_hit_ordering_across_representations() {
    let (trace, budget) = upisa();
    let run = |kind| {
        let cfg = SummaryCacheConfig {
            kind,
            policy: UpdatePolicy::Threshold(0.01),
            multicast_updates: false,
        };
        simulate_summary_cache(&trace, &cfg, budget)
            .metrics
            .rates()
            .false_hit_ratio
    };
    let exact = run(SummaryKind::ExactDirectory);
    let server = run(SummaryKind::ServerName);
    let b8 = run(SummaryKind::Bloom { load_factor: 8, hashes: 4 });
    let b16 = run(SummaryKind::Bloom { load_factor: 16, hashes: 4 });
    let b32 = run(SummaryKind::Bloom { load_factor: 32, hashes: 4 });
    assert!(server > b8, "server {server} > bloom8 {b8}");
    assert!(b8 > b16, "bloom8 {b8} > bloom16 {b16}");
    assert!(b16 > b32, "bloom16 {b16} > bloom32 {b32}");
    assert!(b32 >= exact, "bloom32 {b32} >= exact {exact}");
    assert!(exact < 0.01, "exact-directory false hits are deletion lag only");
}

/// Fig. 5's headline: every representation's *hit ratio* lands within a
/// point or two of exact-directory — the errors barely cost hits.
#[test]
fn hit_ratio_insensitive_to_representation() {
    let (trace, budget) = upisa();
    let run = |kind| {
        let cfg = SummaryCacheConfig {
            kind,
            policy: UpdatePolicy::Threshold(0.01),
            multicast_updates: false,
        };
        simulate_summary_cache(&trace, &cfg, budget)
            .metrics
            .rates()
            .total_hit_ratio
    };
    let exact = run(SummaryKind::ExactDirectory);
    for kind in [
        SummaryKind::ServerName,
        SummaryKind::Bloom { load_factor: 8, hashes: 4 },
        SummaryKind::Bloom { load_factor: 32, hashes: 4 },
    ] {
        let h = run(kind);
        assert!(
            (h - exact).abs() < 0.02,
            "{kind:?}: {h} vs exact {exact}"
        );
    }
}

/// Fig. 7's headline: summary cache sends far fewer messages than ICP.
#[test]
fn summary_cache_slashes_messages() {
    let (trace, budget) = upisa();
    let cfg = SummaryCacheConfig {
        kind: SummaryKind::Bloom { load_factor: 16, hashes: 4 },
        policy: UpdatePolicy::EveryRequests(300),
        multicast_updates: false,
    };
    let r = simulate_summary_cache(&trace, &cfg, budget);
    let sc = r.metrics.queries_sent + r.metrics.update_messages;
    assert!(
        r.icp_queries as f64 / sc as f64 > 10.0,
        "icp {} vs sc {}",
        r.icp_queries,
        sc
    );
    // Fig. 8: bytes drop too.
    let sc_bytes = r.metrics.query_bytes + r.metrics.update_bytes;
    assert!(
        sc_bytes * 2 < r.icp_query_bytes,
        "bytes cut by >50%: sc {} vs icp {}",
        sc_bytes,
        r.icp_query_bytes
    );
}

/// The NLANR anomaly: the same trace with duplicate simultaneous
/// cross-group requests loses more hit ratio to update delay than a
/// clean trace does (Section V-A's diagnosis).
#[test]
fn nlanr_anomaly_amplifies_delay_sensitivity() {
    let nlanr = profile("NLANR").unwrap().generate_scaled(10);
    let dec = profile("DEC").unwrap().generate_scaled(10);
    let loss = |trace: &summary_cache::trace::Trace| {
        let budget = TraceStats::compute(trace).infinite_cache_bytes / 10;
        let run = |t| {
            let cfg = SummaryCacheConfig {
                kind: SummaryKind::ExactDirectory,
                policy: UpdatePolicy::Threshold(t),
                multicast_updates: false,
            };
            simulate_summary_cache(trace, &cfg, budget)
                .metrics
                .rates()
                .total_hit_ratio
        };
        run(0.0) - run(0.01)
    };
    assert!(
        loss(&nlanr) > loss(&dec),
        "NLANR must be more delay-sensitive: {} vs {}",
        loss(&nlanr),
        loss(&dec)
    );
}
