//! Live-system integration: real daemons, real sockets, real datagrams
//! on loopback — the Section VII prototype behaviours.

use std::time::Duration;
use summary_cache::cache::DocMeta;
use summary_cache::proxy::client::ProxyClient;
use summary_cache::proxy::router::DirectoryInspect;
use summary_cache::proxy::{BenchmarkConfig, Cluster, ClusterConfig, Mode, ReplayMode};
use summary_cache::trace::{GeneratorConfig, TraceGenerator};

fn cfg(proxies: u32, mode: Mode) -> ClusterConfig {
    ClusterConfig {
        proxies,
        mode,
        cache_bytes: 8 << 20,
        expected_docs: 1_000,
        origin_delay: Duration::from_millis(10),
        icp_timeout_ms: 400,
        keepalive_ms: 0,
        update_loss: 0.0,
    }
}

fn shared_trace(groups: u32, requests: usize) -> summary_cache::trace::Trace {
    TraceGenerator::new(GeneratorConfig {
        name: "live".into(),
        requests,
        clients: groups * 8,
        documents: requests / 5,
        groups,
        mean_gap_ms: 1.0,
        ..Default::default()
    })
    .generate()
}

/// The paper's central protocol claim, live: SC-ICP finds the same
/// remote hits as ICP with a fraction of the messages.
#[test]
fn sc_icp_matches_icp_hits_with_fewer_messages() {
    let trace = shared_trace(4, 2_000);

    let icp = Cluster::start(&cfg(4, Mode::Icp)).unwrap();
    icp.run_replay(&trace, 4, ReplayMode::PerClient).unwrap();
    let icp_totals = icp.aggregate();
    icp.shutdown();

    let sc_mode = Mode::SummaryCache {
        load_factor: 16,
        hashes: 4,
        policy: summary_cache::core::UpdatePolicy::Threshold(0.005),
    };
    let sc = Cluster::start(&cfg(4, sc_mode)).unwrap();
    sc.run_replay(&trace, 4, ReplayMode::PerClient).unwrap();
    let sc_totals = sc.aggregate();
    sc.shutdown();

    assert!(icp_totals.remote_hits > 20, "workload has remote hits: {icp_totals:?}");
    // SC finds most of ICP's remote hits (summaries lag a little)...
    assert!(
        sc_totals.remote_hits as f64 > icp_totals.remote_hits as f64 * 0.6,
        "sc {} vs icp {}",
        sc_totals.remote_hits,
        icp_totals.remote_hits
    );
    // ...while sending far fewer queries. (This workload shares heavily
    // — most documents really are at some peer — so candidates are
    // genuine; the reduction is bounded by the true remote-hit rate.)
    assert!(
        sc_totals.icp_queries_sent * 2 < icp_totals.icp_queries_sent,
        "sc queries {} vs icp {}",
        sc_totals.icp_queries_sent,
        icp_totals.icp_queries_sent
    );
    // Hit ratios within a couple of points.
    assert!(
        (sc_totals.hit_ratio() - icp_totals.hit_ratio()).abs() < 0.04,
        "sc {:.3} vs icp {:.3}",
        sc_totals.hit_ratio(),
        icp_totals.hit_ratio()
    );
}

/// Remote stale hits, live: a peer advertises a document, but its copy
/// is an older version — the fetch must fall through to the origin and
/// be counted as a remote stale hit.
#[test]
fn remote_stale_hit_falls_through_to_origin() {
    let cluster = Cluster::start(&cfg(2, Mode::Icp)).unwrap();
    let url = "http://server-1.trace.invalid/doc/7";
    let mut c0 =
        ProxyClient::connect(cluster.daemons[0].http_addr, cluster.daemons[0].stats.clone())
            .unwrap();
    let mut c1 =
        ProxyClient::connect(cluster.daemons[1].http_addr, cluster.daemons[1].stats.clone())
            .unwrap();
    // Proxy 0 caches version 1.
    assert_eq!(
        c0.get(url, DocMeta { size: 1000, last_modified: 1 }).unwrap(),
        200
    );
    // Proxy 1's client wants version 2: ICP says proxy 0 has the URL,
    // but the fetched copy is stale.
    assert_eq!(
        c1.get(url, DocMeta { size: 1000, last_modified: 2 }).unwrap(),
        200
    );
    let s1 = cluster.daemons[1].stats.snapshot();
    assert_eq!(s1.remote_stale_hits, 1, "{s1:?}");
    assert_eq!(s1.remote_hits, 0);
    cluster.shutdown();
}

/// Regression: an all-miss ICP round must resolve as soon as the last
/// MISS reply lands, not sit out the timeout. The old accounting set
/// `outstanding` to the configured peer count before sending, so any
/// datagram that failed to send (or raced the replies) left the waiter
/// pinned until `icp_timeout_ms`.
#[test]
fn all_miss_icp_round_beats_the_timeout() {
    let mut config = cfg(3, Mode::Icp);
    config.icp_timeout_ms = 2_000;
    config.origin_delay = Duration::from_millis(10);
    let cluster = Cluster::start(&config).unwrap();
    let mut c0 =
        ProxyClient::connect(cluster.daemons[0].http_addr, cluster.daemons[0].stats.clone())
            .unwrap();
    // Warm one request through so sockets and threads are all up.
    c0.get(
        "http://server-0.trace.invalid/warm",
        DocMeta { size: 100, last_modified: 1 },
    )
    .unwrap();
    let t0 = std::time::Instant::now();
    for i in 0..5 {
        let url = format!("http://server-0.trace.invalid/unique/{i}");
        // Nobody has these: both peers answer MISS, then origin serves.
        c0.get(&url, DocMeta { size: 100, last_modified: 1 }).unwrap();
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(1_000),
        "5 all-miss rounds took {elapsed:?}; a single 2s timeout would dwarf this"
    );
    let s0 = cluster.daemons[0].stats.snapshot();
    assert_eq!(s0.remote_hits, 0);
    assert!(s0.icp_queries_sent >= 12, "queries did go out: {s0:?}");
    cluster.shutdown();
}

/// Regression: once peers are detected as failed, ICP mode must stop
/// querying them entirely — a request should cost origin latency, not
/// `icp_timeout_ms` waiting on replies that can never come.
#[test]
fn failed_peers_are_not_queried_in_icp_mode() {
    let mut config = cfg(3, Mode::Icp);
    config.icp_timeout_ms = 2_000;
    config.keepalive_ms = 50; // failure threshold = 150 ms
    config.origin_delay = Duration::from_millis(10);
    let cluster = Cluster::start(&config).unwrap();
    cluster.daemons[1].shutdown();
    cluster.daemons[2].shutdown();
    let d0 = &cluster.daemons[0];
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
            d0.stats.snapshot().peer_failures >= 2
        }),
        "both peers declared dead"
    );

    let sent_before = d0.stats.snapshot().icp_queries_sent;
    let mut c0 = ProxyClient::connect(d0.http_addr, d0.stats.clone()).unwrap();
    let t0 = std::time::Instant::now();
    c0.get(
        "http://server-0.trace.invalid/after-failure",
        DocMeta { size: 100, last_modified: 1 },
    )
    .unwrap();
    let elapsed = t0.elapsed();
    let s0 = d0.stats.snapshot();
    assert_eq!(
        s0.icp_queries_sent, sent_before,
        "no queries to peers known dead"
    );
    assert!(
        elapsed < Duration::from_millis(500),
        "request went straight to origin, got {elapsed:?}"
    );
    cluster.origin.shutdown();
    d0.shutdown();
}

/// Keep-alives flow in every mode — the paper's no-ICP baseline has
/// nonzero UDP traffic consisting solely of them.
#[test]
fn keepalives_are_the_no_icp_baseline() {
    let mut config = cfg(3, Mode::NoIcp);
    config.keepalive_ms = 50;
    let cluster = Cluster::start(&config).unwrap();
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
            cluster.aggregate().udp_sent >= 3 * 2 * 3 // 3 proxies x 2 peers x >=3 ticks
        }),
        "keepalives flowed: {:?}",
        cluster.aggregate()
    );
    assert_eq!(cluster.aggregate().icp_queries_sent, 0);
    cluster.shutdown();
}

/// Cache capacity is enforced across the live path: a stream larger
/// than the cache must evict and keep byte usage within budget.
#[test]
fn live_cache_respects_capacity() {
    let mut config = cfg(2, Mode::NoIcp);
    config.cache_bytes = 64 * 1024;
    let cluster = Cluster::start(&config).unwrap();
    let mut c0 =
        ProxyClient::connect(cluster.daemons[0].http_addr, cluster.daemons[0].stats.clone())
            .unwrap();
    for i in 0..50 {
        let url = format!("http://server-0.trace.invalid/doc/{i}");
        c0.get(&url, DocMeta { size: 8 * 1024, last_modified: 1 })
            .unwrap();
    }
    // 50 x 8KB = 400KB through a 64KB cache: at most 8 docs fit.
    assert!(cluster.daemons[0].cached_docs() <= 8);
    cluster.shutdown();
}

/// The synthetic benchmark reaches its inherent hit ratio through the
/// full live stack (client -> proxy -> origin).
#[test]
fn benchmark_hits_inherent_ratio_live() {
    let cluster = Cluster::start(&cfg(2, Mode::NoIcp)).unwrap();
    cluster
        .run_benchmark(&BenchmarkConfig {
            clients_per_proxy: 6,
            requests_per_client: 100,
            target_hit_ratio: 0.45,
            size_pareto: (1.1, 256, 32 * 1024),
            seed: 3,
        })
        .unwrap();
    let totals = cluster.aggregate();
    let hr = totals.hit_ratio();
    assert!(
        (0.35..0.55).contains(&hr),
        "live hit ratio {hr} should track the 45% inherent ratio"
    );
    cluster.shutdown();
}
