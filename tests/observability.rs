//! Observability integration: a live SC-ICP cluster must expose its
//! whole instrument surface over each daemon's admin endpoint, and the
//! exposition must agree with the in-process registry snapshot — the
//! property that lets the table/figure harnesses read every published
//! number from sc-obs instead of side tallies.

use std::collections::BTreeSet;
use std::time::Duration;
use summary_cache::json::Value;
use summary_cache::proxy::{admin, Cluster, ClusterConfig, Mode, ReplayMode};
use summary_cache::trace::{GeneratorConfig, TraceGenerator};

fn sc_cluster() -> Cluster {
    let cfg = ClusterConfig {
        proxies: 3,
        mode: Mode::SummaryCache {
            load_factor: 16,
            hashes: 4,
            policy: summary_cache::core::UpdatePolicy::Threshold(0.01),
        },
        cache_bytes: 8 << 20,
        expected_docs: 1_000,
        origin_delay: Duration::from_millis(2),
        icp_timeout_ms: 400,
        keepalive_ms: 0,
        update_loss: 0.0,
    };
    Cluster::start(&cfg).expect("cluster start")
}

fn drive(cluster: &Cluster) {
    let trace = TraceGenerator::new(GeneratorConfig {
        name: "obs".into(),
        requests: 600,
        clients: 12,
        documents: 150,
        groups: 3,
        mean_gap_ms: 0.5,
        ..Default::default()
    })
    .generate();
    cluster.run_replay(&trace, 3, ReplayMode::PerClient).expect("replay");
}

/// Distinct instrument (metric family) names in a Prometheus text page.
fn families(page: &str) -> BTreeSet<String> {
    page.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            l.split(|c| c == '{' || c == ' ')
                .next()
                .unwrap_or("")
                .to_string()
        })
        .collect()
}

#[test]
fn admin_endpoint_serves_the_full_instrument_surface() {
    let cluster = sc_cluster();
    drive(&cluster);

    let d = &cluster.daemons[0];
    let page = admin::fetch(d.admin_addr, "/metrics").expect("fetch /metrics");
    let names = families(&page);

    assert!(
        names.len() >= 15,
        "expected >= 15 distinct instruments, got {}: {names:?}",
        names.len()
    );
    // The per-peer series the paper's staleness/false-hit arguments
    // hinge on, plus the headline counters, must all be present.
    for required in [
        "sc_peer_staleness",
        "sc_peer_false_hits_total",
        "sc_peer_queries_sent_total",
        "sc_http_requests_total",
        "sc_false_hits_total",
        "sc_remote_hits_total",
        "sc_udp_datagrams_sent_total",
        "sc_request_latency_us_count",
        "sc_summary_staleness",
    ] {
        assert!(names.contains(required), "missing `{required}` in:\n{page}");
    }
    // Per-peer series carry the peer label: a 3-proxy daemon has 2 peers.
    assert_eq!(
        page.lines()
            .filter(|l| l.starts_with("sc_peer_staleness{peer="))
            .count(),
        2,
        "one staleness gauge per peer:\n{page}"
    );

    // The page is a projection of the same registry the snapshot reads.
    let snap = d.stats.snapshot();
    assert!(
        page.contains(&format!("sc_http_requests_total {}", snap.http_requests)),
        "exposition and snapshot disagree on http_requests:\n{page}"
    );

    cluster.shutdown();
}

#[test]
fn json_and_event_routes_reflect_the_run() {
    let cluster = sc_cluster();
    drive(&cluster);

    let d = &cluster.daemons[0];
    let json = admin::fetch(d.admin_addr, "/json").expect("fetch /json");
    let v = Value::parse(&json).expect("valid snapshot json");
    // The route serves the raw registry snapshot: every instrument with
    // its kind, labels and value.
    let instruments = match v.get("instruments") {
        Some(Value::Array(items)) => items,
        other => panic!("`instruments` array expected, got {other:?}"),
    };
    let reqs = instruments
        .iter()
        .find(|i| {
            i.get("name").and_then(|n| n.as_str()) == Some("sc_http_requests_total")
        })
        .and_then(|i| i.get("value"))
        .and_then(|n| n.as_f64())
        .expect("sc_http_requests_total instrument");
    assert!(reqs > 0.0, "daemon served requests: {reqs}");

    // Journal writes trail the replies that caused them; poll instead
    // of assuming the run's last event already landed.
    assert!(
        sc_util::poll::wait_until(Duration::from_secs(5), Duration::from_millis(10), || {
            let events = admin::fetch(d.admin_addr, "/events").expect("fetch /events");
            match Value::parse(&events).expect("valid events json") {
                Value::Array(items) => !items.is_empty(),
                other => panic!("/events must be an array, got {other:?}"),
            }
        }),
        "an SC run journals events"
    );

    cluster.shutdown();
}
