//! Deterministic protocol simulation: the seeded soak suite.
//!
//! Hundreds of seeds, each a complete fault schedule — message loss,
//! duplication, reordering, proxy crash+restart, network partitions —
//! driven through the sans-I/O protocol machine on a virtual clock.
//! No real socket is ever bound; the same seed always produces the
//! same event journal.
//!
//! Environment knobs:
//!
//! * `SC_SIM_SEED=0x2a` (hex or decimal) — replay exactly one seed,
//!   as printed by a failing run;
//! * `SC_SIM_SEEDS=1000` — sweep that many seeds instead of the
//!   default 200 (what `scripts/check.sh --soak` does);
//! * `SC_SIM_FORCE_FAIL=<seed>` — make that seed fail artificially, to
//!   demonstrate the printed repro line.

use summary_cache::bloom::UrlKey;
use summary_cache::proxy::machine::{
    DirectoryView, Event, Machine, Output, SendKind, VirtualTime,
};
use summary_cache::proxy::router::DirectoryInspect;
use summary_cache::proxy::simnet::{Sim, SimConfig};
use summary_cache::core::{ProxySummary, SummaryKind, UpdatePolicy};
use summary_cache::wire::icp::IcpMessage;

const DEFAULT_SEEDS: u64 = 200;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Run one seed and assert every acceptance property. Panics (inside
/// the caller's catch_unwind) on any violation; the safety invariants
/// (install-from-bitmap-only, exactly-one-DIRREQ-per-gap) are asserted
/// continuously inside `Sim::run` itself.
fn check_seed(seed: u64) {
    if env_u64("SC_SIM_FORCE_FAIL") == Some(seed) {
        panic!("forced failure requested via SC_SIM_FORCE_FAIL");
    }
    let report = Sim::new(SimConfig::default(), seed).run();
    assert!(
        report.converged,
        "cluster did not converge bit-for-bit within the settle budget \
         ({} events, {} gaps, {} resyncs)",
        report.events_processed, report.gaps_seen, report.resyncs_requested
    );
    assert!(
        report.events_processed >= 1_000,
        "schedule too small: only {} events processed",
        report.events_processed
    );
}

/// The main soak: sweep seeds, replaying any failure with a printed
/// one-line repro command.
#[test]
fn seeded_soak() {
    if let Some(seed) = env_u64("SC_SIM_SEED") {
        // Replay mode: exactly the seed from a failure report.
        check_seed(seed);
        return;
    }
    let seeds = env_u64("SC_SIM_SEEDS").unwrap_or(DEFAULT_SEEDS);
    for seed in 0..seeds {
        let outcome = std::panic::catch_unwind(|| check_seed(seed));
        if let Err(cause) = outcome {
            eprintln!(
                "simnet seed {seed:#x} failed; repro: \
                 SC_SIM_SEED={seed:#x} cargo test --test simnet_properties seeded_soak -- --nocapture"
            );
            std::panic::resume_unwind(cause);
        }
    }
}

/// Same seed, same journal — byte for byte. This is what makes every
/// soak failure replayable.
#[test]
fn same_seed_produces_identical_journal() {
    for seed in [0u64, 3, 17, 0xDEAD] {
        let a = Sim::new(SimConfig::default(), seed).run();
        let b = Sim::new(SimConfig::default(), seed).run();
        assert_eq!(
            a.events_processed, b.events_processed,
            "seed {seed:#x}: event counts diverged"
        );
        assert_eq!(
            a.journal, b.journal,
            "seed {seed:#x}: journals diverged — the simulation leaked nondeterminism"
        );
    }
}

/// Different seeds explore different schedules (the sweep is not
/// re-running one schedule 200 times).
#[test]
fn different_seeds_produce_different_schedules() {
    let a = Sim::new(SimConfig::default(), 1).run();
    let b = Sim::new(SimConfig::default(), 2).run();
    assert_ne!(a.journal, b.journal);
}

/// Shard-count invariance over the full default seed set: splitting
/// every node's directory across 2 or 4 shards must reproduce the
/// 1-shard journal bit for bit, seed by seed. Honors `SC_SIM_SEED`
/// (replay one) and `SC_SIM_SEEDS` (sweep size) like `seeded_soak`.
#[test]
fn sharded_sweep_matches_single_shard_journals() {
    let check = |seed: u64| {
        let run = |shards: usize| {
            let mut cfg = SimConfig::default();
            cfg.shards = shards;
            Sim::new(cfg, seed).run()
        };
        let baseline = run(1);
        assert!(
            baseline.converged,
            "seed {seed:#x}: 1-shard baseline did not converge"
        );
        for shards in [2usize, 4] {
            let r = run(shards);
            assert!(
                r.converged,
                "seed {seed:#x}: {shards}-shard run did not converge"
            );
            assert_eq!(
                r.journal, baseline.journal,
                "seed {seed:#x}: {shards}-shard journal diverged from the \
                 1-shard baseline; repro: SC_SIM_SEED={seed:#x} cargo test \
                 --test simnet_properties sharded_sweep -- --nocapture"
            );
        }
    };
    if let Some(seed) = env_u64("SC_SIM_SEED") {
        check(seed);
        return;
    }
    let seeds = env_u64("SC_SIM_SEEDS").unwrap_or(DEFAULT_SEEDS);
    for seed in 0..seeds {
        let outcome = std::panic::catch_unwind(|| check(seed));
        if let Err(cause) = outcome {
            eprintln!(
                "shard sweep seed {seed:#x} failed; repro: \
                 SC_SIM_SEED={seed:#x} cargo test --test simnet_properties \
                 sharded_sweep -- --nocapture"
            );
            std::panic::resume_unwind(cause);
        }
    }
}

// ---------------------------------------------------------------------
// Machine-level properties (no simnet): duplicate/past datagrams are
// no-ops, and a delta alone never materializes a replica.
// ---------------------------------------------------------------------

struct NoDocs;
impl DirectoryView for NoDocs {
    fn contains(&self, _url: &str) -> bool {
        false
    }
}

fn sc_machine(id: u32, peers: Vec<u32>, generation: u32) -> Machine {
    let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
    let mut summary = ProxySummary::with_expected_docs(kind, 64);
    summary.set_generation(generation);
    Machine::new(
        id,
        peers,
        50,
        Some((summary, UpdatePolicy::Threshold(0.0))),
        VirtualTime::ZERO,
    )
}

fn at_ms(ms: u64) -> VirtualTime {
    VirtualTime::from_micros(ms * 1_000)
}

/// Every update datagram (delta or full bitmap) a machine emits from
/// one event batch, encoded. Updates ride per-peer fan-out lanes, so
/// any destination counts (these machines have exactly one peer).
fn update_datagrams(outputs: &[Output], sender: u32) -> Vec<Vec<u8>> {
    outputs
        .iter()
        .filter_map(|o| match o {
            Output::Send(s) if s.kind.is_update() => {
                Some(s.msg.encode(sender).expect("update datagram encodes"))
            }
            _ => None,
        })
        .collect()
}

/// Property: after a replica is in sync, re-delivering any past update
/// datagram — in any order, any number of times — changes nothing: no
/// bit flips, no gap, no DIRREQ.
#[test]
fn duplicate_and_past_datagrams_are_noops() {
    sc_util::prop::check("dup_past_noop", 40, |rng| {
        let mut publisher = sc_machine(1, vec![2], 100);
        let mut receiver = sc_machine(2, vec![1], 200);
        let dir = NoDocs;

        // Publisher emits a stream of updates from a few inserts.
        let mut stream: Vec<Vec<u8>> = Vec::new();
        let inserts = rng.gen_range(2..8u32);
        for i in 0..inserts {
            let url = format!("http://s1.invalid/doc/{i}");
            let key = UrlKey::new(url.as_bytes());
            let none: Vec<UrlKey> = Vec::new();
            publisher.handle(
                at_ms(i as u64 + 1),
                Event::Stored { url: &key, evicted: &none },
                &dir,
            );
            publisher.handle(at_ms(i as u64 + 1), Event::RequestDone, &dir);
            // Small publishes coalesce; the fan-out tick carries them.
            let outs = publisher.handle(at_ms(i as u64 + 1), Event::Tick, &dir);
            stream.extend(update_datagrams(&outs, 1));
        }
        // A tick's heartbeat closes the stream.
        let outs = publisher.handle(at_ms(50), Event::Tick, &dir);
        stream.extend(update_datagrams(&outs, 1));
        assert!(stream.len() >= 2, "publisher produced a stream");

        // Deliver in order; the first delta triggers a DIRREQ, answered
        // with a bitmap, after which the rest of the stream applies.
        let mut t = 100;
        for datagram in &stream {
            t += 1;
            let outs = receiver.handle(
                at_ms(t),
                Event::Datagram { from: Some(1), data: datagram },
                &dir,
            );
            // Answer any DIRREQ with the publisher's current bitmap.
            for o in outs {
                if let Output::Send(s) = o {
                    if matches!(s.kind, SendKind::Resync { .. }) {
                        let req = s.msg.encode(2).expect("dirreq encodes");
                        let answers = publisher.handle(
                            at_ms(t),
                            Event::Datagram { from: Some(2), data: &req },
                            &dir,
                        );
                        for a in answers {
                            if let Output::Send(full) = a {
                                let bytes = full.msg.encode(1).expect("bitmap encodes");
                                t += 1;
                                receiver.handle(
                                    at_ms(t),
                                    Event::Datagram { from: Some(1), data: &bytes },
                                    &dir,
                                );
                            }
                        }
                    }
                }
            }
        }
        let synced = receiver.replica_bits(1).expect("replica synced after stream");
        assert_eq!(Some(synced.clone()), publisher.published_bits());

        // Now re-deliver past datagrams, shuffled and repeated: pure
        // no-ops — no sends, no state change.
        let mut replay: Vec<&Vec<u8>> = stream.iter().chain(stream.iter()).collect();
        rng.shuffle(&mut replay);
        for datagram in replay {
            t += 1;
            let outs = receiver.handle(
                at_ms(t),
                Event::Datagram { from: Some(1), data: datagram },
                &dir,
            );
            for o in &outs {
                match o {
                    Output::Send(s) => panic!("past datagram provoked a send: {s:?}"),
                    Output::Effect(e) => assert!(
                        matches!(e, summary_cache::proxy::machine::Effect::UpdateReceived),
                        "past datagram provoked an effect: {e:?}"
                    ),
                }
            }
            assert_eq!(
                receiver.replica_bits(1),
                Some(synced.clone()),
                "a duplicate/past datagram mutated the replica"
            );
        }
    });
}

/// Property: a machine that has never seen a bitmap never materializes
/// a replica, no matter what delta stream arrives.
#[test]
fn deltas_alone_never_install_a_replica() {
    sc_util::prop::check("no_install_from_delta", 40, |rng| {
        let mut publisher = sc_machine(1, vec![2], 300);
        let mut receiver = sc_machine(2, vec![1], 400);
        let dir = NoDocs;
        let mut stream: Vec<Vec<u8>> = Vec::new();
        for i in 0..rng.gen_range(1..6u32) {
            let url = format!("http://s1.invalid/doc/{i}");
            let key = UrlKey::new(url.as_bytes());
            let none: Vec<UrlKey> = Vec::new();
            publisher.handle(
                at_ms(i as u64 + 1),
                Event::Stored { url: &key, evicted: &none },
                &dir,
            );
            publisher.handle(at_ms(i as u64 + 1), Event::RequestDone, &dir);
            // The fan-out tick flushes the coalesced batch; keep only
            // deltas: drop any full-bitmap restatement.
            let outs = publisher.handle(at_ms(i as u64 + 1), Event::Tick, &dir);
            stream.extend(
                outs.iter()
                    .filter_map(|o| match o {
                        Output::Send(s) if s.kind == SendKind::UpdateDelta => {
                            Some(s.msg.encode(1).expect("delta encodes"))
                        }
                        _ => None,
                    }),
            );
        }
        rng.shuffle(&mut stream);
        for (i, datagram) in stream.iter().enumerate() {
            receiver.handle(
                at_ms(1_000 + i as u64),
                Event::Datagram { from: Some(1), data: datagram },
                &dir,
            );
            assert!(
                !receiver.replica_installed(1),
                "a delta alone installed a replica"
            );
            assert!(receiver.replica_bits(1).is_none());
        }
    });
}

/// The malformed-datagram path the simnet relies on: a machine fed
/// arbitrary bytes neither panics nor emits anything for undecodable
/// input.
#[test]
fn machine_drops_undecodable_datagrams() {
    let mut rng = sc_util::Rng::seed_from_u64(0x51_3141);
    let mut m = sc_machine(1, vec![2], 9);
    for len in 0..64usize {
        let data: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        if IcpMessage::decode(&data).is_ok() {
            continue; // astronomically unlikely, but then it's a valid datagram
        }
        let outs = m.handle(at_ms(1), Event::Datagram { from: Some(2), data: &data }, &NoDocs);
        assert!(outs.is_empty(), "garbage produced outputs: {outs:?}");
    }
}
