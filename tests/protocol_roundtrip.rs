//! Protocol-level integration: a proxy's summary travels through the
//! actual wire format (DIRUPDATE / DIRFULL datagrams) into a peer's
//! replica, which must then answer probes identically — including
//! across lost and reordered updates, the failure mode the absolute
//! bit-flip encoding was designed for (Section VI-A).

use summary_cache::bloom::{BitVec, BloomFilter, HashSpec};
use summary_cache::core::{ProxySummary, SummaryKind, SummarySnapshot};
use summary_cache::wire::icp::{DirContent, DirUpdate, IcpMessage};

fn url(i: u32) -> (String, String) {
    (
        format!("http://server-{}.trace.invalid/doc/{i}", i / 12),
        format!("server-{}.trace.invalid", i / 12),
    )
}

/// Encode one publish as DIRUPDATE datagrams (mirroring the daemon):
/// the publish's own seq goes on the first datagram and each extra
/// chunk takes the next consecutive one.
fn encode_publish(summary: &ProxySummary, full: bool, flips: Vec<summary_cache::bloom::Flip>) -> Vec<Vec<u8>> {
    let SummarySnapshot::Bloom { spec, bits } = summary.snapshot_published() else {
        panic!("bloom summaries only");
    };
    let mk = |seq: u32, content| {
        IcpMessage::DirUpdate {
            request_number: 1,
            sender: 9,
            update: DirUpdate {
                function_num: spec.k(),
                function_bits: spec.function_bits(),
                bit_array_size: spec.table_bits(),
                generation: summary.generation(),
                seq,
                content,
            },
        }
        .encode(9)
        .expect("fits")
        .to_vec()
    };
    if full {
        vec![mk(summary.seq(), DirContent::Bitmap(bits.as_words().to_vec()))]
    } else {
        flips
            .chunks(300)
            .enumerate()
            .map(|(i, c)| mk(summary.seq().wrapping_add(i as u32), DirContent::Flips(c.to_vec())))
            .collect()
    }
}

/// Apply received datagrams to a replica (mirroring the daemon).
fn apply(replica: &mut Option<BloomFilter>, datagram: &[u8]) {
    let IcpMessage::DirUpdate { update, .. } = IcpMessage::decode(datagram).expect("valid") else {
        panic!("expected a directory update");
    };
    let spec = HashSpec::new(
        update.function_num,
        update.function_bits,
        update.bit_array_size,
    )
    .expect("valid spec");
    let f = replica.get_or_insert_with(|| {
        BloomFilter::from_parts(spec, BitVec::new(spec.table_bits() as usize))
    });
    match update.content {
        DirContent::Flips(flips) => {
            for fl in flips {
                f.apply_flip(fl.index(), fl.set_bit());
            }
        }
        DirContent::Bitmap(words) => {
            f.replace_bits(BitVec::from_words(spec.table_bits() as usize, words));
        }
        DirContent::CompressedBitmap {
            first_bit,
            seg_bits,
            ones,
            rice,
            data,
        } => {
            // Mirror of the shard's Golomb–Rice splice: decode the
            // segment and set its one-bits at the segment offset.
            let coded = summary_cache::bloom::CompressedBits {
                len: seg_bits,
                ones,
                rice,
                data,
            };
            let seg = summary_cache::bloom::decompress(&coded).expect("valid code stream");
            for i in seg.iter_ones() {
                f.apply_flip(first_bit + i as u32, true);
            }
        }
    }
}

fn assert_replica_matches(summary: &ProxySummary, replica: &BloomFilter, upto: u32) {
    for i in 0..upto {
        let (u, s) = url(i);
        assert_eq!(
            replica.contains(u.as_bytes()),
            summary.probe_published(u.as_bytes(), s.as_bytes()),
            "replica and published view disagree on doc {i}"
        );
    }
}

#[test]
fn delta_updates_reconstruct_the_published_view() {
    let kind = SummaryKind::Bloom { load_factor: 16, hashes: 4 };
    let mut summary = ProxySummary::with_expected_docs(kind, 2_000);
    let mut replica: Option<BloomFilter> = None;

    // Round 1: 150 inserts — few enough that the delta (≤600 flips,
    // ≤2432 B) beats the full bitmap (32000 bits → 4032 B).
    for i in 0..150 {
        let (u, s) = url(i);
        summary.insert(u.as_bytes(), s.as_bytes());
    }
    let out = summary.publish();
    assert!(!out.full_bitmap, "delta must win at this churn level");
    for d in encode_publish(&summary, out.full_bitmap, out.flips) {
        apply(&mut replica, &d);
    }
    assert_replica_matches(&summary, replica.as_ref().unwrap(), 700);

    // Round 2: churn — 100 removals, 100 fresh inserts, ship the delta.
    for i in 0..100 {
        let (u, s) = url(i);
        summary.remove(u.as_bytes(), s.as_bytes());
        let (u2, s2) = url(10_000 + i);
        summary.insert(u2.as_bytes(), s2.as_bytes());
    }
    let out = summary.publish();
    for d in encode_publish(&summary, out.full_bitmap, out.flips) {
        apply(&mut replica, &d);
    }
    assert_replica_matches(&summary, replica.as_ref().unwrap(), 400);
    let (gone, gs) = url(10);
    assert!(!replica.as_ref().unwrap().contains(gone.as_bytes()));
    assert!(!summary.probe_published(gone.as_bytes(), gs.as_bytes()));
}

#[test]
fn full_bitmap_recovers_from_lost_updates() {
    let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
    let mut summary = ProxySummary::with_expected_docs(kind, 1_000);
    let mut replica: Option<BloomFilter> = None;

    // First publish is LOST (never applied).
    for i in 0..300 {
        let (u, s) = url(i);
        summary.insert(u.as_bytes(), s.as_bytes());
    }
    let lost = summary.publish();
    drop(lost);

    // Second publish as a full bitmap (the bootstrap/recovery path):
    for i in 300..400 {
        let (u, s) = url(i);
        summary.insert(u.as_bytes(), s.as_bytes());
    }
    let out = summary.publish();
    // Force the full-bitmap form regardless of what publish chose.
    for d in encode_publish(&summary, true, Vec::new()) {
        apply(&mut replica, &d);
    }
    assert_replica_matches(&summary, replica.as_ref().unwrap(), 500);
    let _ = out;
}

#[test]
fn redundant_and_reordered_deltas_are_harmless() {
    // Absolute flips: applying a datagram twice, or applying the same
    // round's datagrams in any order, yields the same replica. (The
    // daemon itself now refuses out-of-sequence deltas and resyncs
    // instead; this pins the *encoding* property that makes a resync
    // merely wasteful, never corrupting.)
    let kind = SummaryKind::Bloom { load_factor: 16, hashes: 4 };
    // 400 inserts into a 64000-bit filter: ~1500 flips, so the delta
    // (~6 KB) still beats the full bitmap (8 KB) and spans several
    // 300-flip datagrams.
    let mut summary = ProxySummary::with_expected_docs(kind, 4_000);
    for i in 0..400 {
        let (u, s) = url(i);
        summary.insert(u.as_bytes(), s.as_bytes());
    }
    let out = summary.publish();
    assert!(!out.full_bitmap, "delta must win at this churn level");
    let datagrams = encode_publish(&summary, out.full_bitmap, out.flips);
    assert!(datagrams.len() > 1, "need multiple chunks to reorder");

    let mut forward: Option<BloomFilter> = None;
    for d in &datagrams {
        apply(&mut forward, d);
    }
    let mut reversed: Option<BloomFilter> = None;
    for d in datagrams.iter().rev() {
        apply(&mut reversed, d);
    }
    let mut doubled: Option<BloomFilter> = None;
    for d in datagrams.iter().chain(datagrams.iter()) {
        apply(&mut doubled, d);
    }
    assert_eq!(forward.as_ref().unwrap().bits(), reversed.as_ref().unwrap().bits());
    assert_eq!(forward.as_ref().unwrap().bits(), doubled.as_ref().unwrap().bits());
    assert_replica_matches(&summary, forward.as_ref().unwrap(), 2_200);
}

#[test]
fn sequenced_update_and_dirreq_datagrams_roundtrip_and_reject_truncation() {
    use summary_cache::bloom::Flip;

    // Every shape the resync handshake puts on the wire: a delta with a
    // mid-stream (generation, seq), an empty heartbeat delta, a full
    // bitmap answer, and the DIRREQ that asks for one.
    let messages = vec![
        IcpMessage::DirUpdate {
            request_number: 11,
            sender: 3,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 4_096,
                generation: 0xDEAD_BEEF,
                seq: u32::MAX, // about to wrap: the compare is modular
                content: DirContent::Flips(vec![Flip::set(1), Flip::clear(4_095)]),
            },
        },
        IcpMessage::DirUpdate {
            request_number: 12,
            sender: 3,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 4_096,
                generation: 1,
                seq: 0,
                content: DirContent::Flips(Vec::new()), // heartbeat
            },
        },
        IcpMessage::DirUpdate {
            request_number: 13,
            sender: 3,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 128,
                generation: 9,
                seq: 77,
                content: DirContent::Bitmap(vec![!0u64, 1]),
            },
        },
        IcpMessage::DirReq {
            request_number: 14,
            sender: 3,
            generation: 0xDEAD_BEEF,
            accepts_gr: true,
        },
    ];
    for msg in messages {
        let bytes = msg.encode(3).expect("encodes");
        let back = IcpMessage::decode(&bytes).expect("decodes");
        assert_eq!(back, msg, "lossless roundtrip");
        // A datagram cut anywhere — mid-header, mid-extension-header,
        // mid-payload — must be rejected, never misread as a shorter
        // valid message (a truncated bitmap silently installed as a
        // replica would be exactly the drift this protocol kills).
        for cut in 0..bytes.len() {
            assert!(
                IcpMessage::decode(&bytes[..cut]).is_err(),
                "truncation at {cut}/{} must not decode",
                bytes.len()
            );
        }
    }
}

/// Robustness: the decoder must never panic, whatever bytes arrive.
/// Two seeded sweeps — pure random byte strings of every small length,
/// and valid DIRUPDATE/DIRREQ/query datagrams with random mutations
/// (flipped bytes, truncations, extensions) — exercise the length and
/// tag checks on every path. Decode may return `Err` as much as it
/// likes; it may not crash the daemon thread.
#[test]
fn decode_never_panics_on_arbitrary_bytes() {
    use summary_cache::bloom::Flip;

    let mut rng = sc_util::Rng::seed_from_u64(0xD1_5EA5E);

    // Sweep 1: unstructured noise at every length up to a few MTUs.
    for round in 0..2_000u32 {
        let len = (round as usize % 200) * 8 + rng.gen_range(0..8usize);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        let _ = IcpMessage::decode(&data); // must return, not panic
    }

    // Sweep 2: start from valid datagrams of every message shape and
    // mutate them — this reaches deep parser states (extension headers,
    // flip lists, bitmap word counts) that noise almost never enters.
    let seeds: Vec<Vec<u8>> = vec![
        IcpMessage::Query {
            request_number: 1,
            requester: 1,
            url: "http://h.invalid/x".into(),
        }
        .encode(1)
        .unwrap(),
        IcpMessage::Hit { request_number: 2, url: "http://h.invalid/x".into() }
            .encode(1)
            .unwrap(),
        IcpMessage::Secho { request_number: 0, url: String::new() }.encode(1).unwrap(),
        IcpMessage::DirReq { request_number: 3, sender: 1, generation: 77, accepts_gr: false }
            .encode(1)
            .unwrap(),
        IcpMessage::DirUpdate {
            request_number: 4,
            sender: 1,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 4_096,
                generation: 5,
                seq: 6,
                content: DirContent::Flips(vec![Flip::set(1), Flip::clear(100)]),
            },
        }
        .encode(1)
        .unwrap(),
        IcpMessage::DirUpdate {
            request_number: 5,
            sender: 1,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 256,
                generation: 5,
                seq: 7,
                content: DirContent::Bitmap(vec![!0u64; 4]),
            },
        }
        .encode(1)
        .unwrap(),
    ];
    for _ in 0..3_000u32 {
        let mut bytes = seeds[rng.gen_range(0..seeds.len())].to_vec();
        match rng.gen_range(0u32..4) {
            // Flip a handful of bytes in place.
            0 => {
                for _ in 0..rng.gen_range(1..6usize) {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] ^= rng.next_u32() as u8;
                }
            }
            // Truncate at a random point.
            1 => bytes.truncate(rng.gen_range(0..bytes.len())),
            // Extend with trailing garbage.
            2 => bytes.extend((0..rng.gen_range(1..64usize)).map(|_| rng.next_u32() as u8)),
            // Corrupt the declared-length / count fields specifically.
            _ => {
                for i in 2..bytes.len().min(24) {
                    if rng.gen_bool(0.3) {
                        bytes[i] ^= rng.next_u32() as u8;
                    }
                }
            }
        }
        let _ = IcpMessage::decode(&bytes); // must return, not panic
    }
}

#[test]
fn spec_change_reinitializes_replica() {
    // A peer that restarts with a different filter size announces it in
    // every update header; the replica must be rebuilt, not patched.
    let small = HashSpec::new(4, 32, 1_024).unwrap();
    let large = HashSpec::new(4, 32, 2_048).unwrap();
    let mut replica = BloomFilter::from_parts(small, BitVec::new(1_024));
    replica.apply_flip(5, true);
    // Simulate the daemon's spec check.
    if replica.spec() != large {
        replica = BloomFilter::from_parts(large, BitVec::new(2_048));
    }
    assert_eq!(replica.spec(), large);
    assert_eq!(replica.bits().count_ones(), 0, "stale bits discarded");
}
