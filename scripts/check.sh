#!/bin/sh
# Tier-1 verification: build, test, then run the sc-check gate.
#
# Everything runs offline — the workspace has zero registry
# dependencies (sc-check's `deps` rule enforces exactly that), so no
# step here ever touches the network.
#
#   scripts/check.sh            # from the workspace root
#
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test --workspace -q"
cargo test --workspace -q --offline

echo "==> sc-check (static-analysis gate)"
cargo run -p sc-check --offline --quiet

echo "==> all checks passed"
