#!/bin/sh
# Tier-1 verification: build, test, then run the sc-check gate.
#
# Everything runs offline — the workspace has zero registry
# dependencies (sc-check's `deps` rule enforces exactly that), so no
# step here ever touches the network.
#
#   scripts/check.sh            # from the workspace root
#   scripts/check.sh --soak     # + simnet property suite over an
#                               #   extended seed range (SC_SIM_SEEDS,
#                               #   default 1000; SC_SIM_SEED replays
#                               #   one seed)
#
set -eu

SOAK=0
for arg in "$@"; do
    case "$arg" in
        --soak) SOAK=1 ;;
        *) echo "usage: scripts/check.sh [--soak]" >&2; exit 2 ;;
    esac
done

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test --workspace -q"
cargo test --workspace -q --offline

echo "==> cargo test -p sc-check (the gate gating itself)"
cargo test -p sc-check -q --offline

echo "==> sc-check (static-analysis gate)"
cargo run -p sc-check --offline --quiet

if [ "$SOAK" = 1 ]; then
    SC_SIM_SEEDS="${SC_SIM_SEEDS:-1000}"
    export SC_SIM_SEEDS
    echo "==> seeded soak (simnet property suite, $SC_SIM_SEEDS seeds)"
    cargo test -q --offline --test simnet_properties seeded_soak -- --nocapture
fi

echo "==> all checks passed"
