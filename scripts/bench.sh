#!/bin/sh
# Tracked benchmark run: measure the hash-once probe pipeline, the
# big-N scaleout curves, and the adversarial scenario ruler, refreshing
# BENCH_hotpath.json, BENCH_scaleout.json, and BENCH_scenarios.json at
# the repo root.
#
#   scripts/bench.sh                 # default 200 ms window per case
#   SC_BENCH_MS=1000 scripts/bench.sh  # longer window, steadier numbers
#
# Runs offline (the workspace has zero registry dependencies). Plain
# `cargo test` / `cargo bench` runs never write the JSON — only this
# script sets SC_BENCH_JSON, so the tracked files change exactly when a
# measurement run is intended.
set -eu

cd "$(dirname "$0")/.."

SC_BENCH_MS="${SC_BENCH_MS:-200}"
export SC_BENCH_MS

# Where the JSON lands. The default refreshes the tracked files at the
# repo root; scripts/ci.sh points this at a scratch dir so its short
# smoke run never clobbers the committed measurement rows.
OUT="${SC_BENCH_OUT:-$PWD}"

echo "==> hotpath bench (window ${SC_BENCH_MS} ms/case)"
SC_BENCH_JSON="$OUT/BENCH_hotpath.json" \
    cargo bench --offline -p sc-bench --bench hotpath
echo "==> wrote $OUT/BENCH_hotpath.json"

# The scaleout suite is deterministic simulation counting, not timing:
# it ignores SC_BENCH_MS and always runs the full N ∈ {16, 64, 128}
# grid (about 15 s).
echo "==> scaleout bench (GR resync + big-N update curves)"
SC_BENCH_JSON="$OUT/BENCH_scaleout.json" \
    cargo bench --offline -p sc-bench --bench scaleout
echo "==> wrote $OUT/BENCH_scaleout.json"

# One seeded run per canned adversarial scenario: wall-clock ns per
# simulated request plus the deterministic ruler rows (hit ratio,
# false-hit ratio, virtual p99). Also ignores SC_BENCH_MS.
echo "==> scenario bench (five canned adversarial workloads)"
SC_BENCH_JSON="$OUT/BENCH_scenarios.json" \
    cargo bench --offline -p sc-bench --bench scenarios
echo "==> wrote $OUT/BENCH_scenarios.json"
