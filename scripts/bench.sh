#!/bin/sh
# Hot-path benchmark run: measure the hash-once probe pipeline and
# refresh the tracked BENCH_hotpath.json at the repo root.
#
#   scripts/bench.sh                 # default 200 ms window per case
#   SC_BENCH_MS=1000 scripts/bench.sh  # longer window, steadier numbers
#
# Runs offline (the workspace has zero registry dependencies). Plain
# `cargo test` / `cargo bench` runs never write the JSON — only this
# script sets SC_BENCH_JSON, so the tracked file changes exactly when a
# measurement run is intended.
set -eu

cd "$(dirname "$0")/.."

SC_BENCH_MS="${SC_BENCH_MS:-200}"
SC_BENCH_JSON="$PWD/BENCH_hotpath.json"
export SC_BENCH_MS SC_BENCH_JSON

echo "==> hotpath bench (window ${SC_BENCH_MS} ms/case)"
cargo bench --offline -p sc-bench --bench hotpath

echo "==> wrote $SC_BENCH_JSON"
