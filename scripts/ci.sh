#!/bin/sh
# One-command local CI: build → test → gate → scenario sweep → bench smoke.
#
#   scripts/ci.sh           # 10-seed smokes (a few minutes)
#   scripts/ci.sh --soak    # full 200-seed fault sweeps (tens of minutes)
#
# Chains the tier-1 verification (scripts/check.sh, which builds,
# runs every test suite including sc-check's own, and then the gate)
# with a big-N convergence smoke (the 200-seed soak narrowed to 10
# seeds at 64 proxies, every fault class on), the adversarial scenario
# suite at the same scale (pinned ruler regressions plus the
# false-hit-storm / peer-churn fault sweep), and a short benchmark
# smoke run (SC_BENCH_MS=25 per case) that proves the hotpath,
# scaleout, and scenario bench harnesses still run end-to-end without
# paying the full measurement budget. Everything is offline.
set -eu

cd "$(dirname "$0")/.."

SWEEP_SEEDS="${SC_SIM_SEEDS:-10}"
for arg in "$@"; do
    case "$arg" in
    --soak) SWEEP_SEEDS=200 ;;
    *)
        echo "usage: scripts/ci.sh [--soak]" >&2
        exit 2
        ;;
    esac
done

scripts/check.sh

echo "==> big-N smoke (SC_SIM_PEERS=64, ${SWEEP_SEEDS} seeds)"
SC_SIM_PEERS=64 SC_SIM_SEEDS="$SWEEP_SEEDS" \
    cargo test -q --offline --test simnet_properties seeded_soak

echo "==> scenario suite (SC_SIM_PEERS=64, ${SWEEP_SEEDS}-seed fault sweep)"
SC_SIM_PEERS=64 SC_SIM_SEEDS="$SWEEP_SEEDS" \
    cargo test -q --offline --test scenario_properties

echo "==> bench smoke (SC_BENCH_MS=${SC_BENCH_MS:-25})"
SC_BENCH_MS="${SC_BENCH_MS:-25}" scripts/bench.sh

echo "==> ci passed"
