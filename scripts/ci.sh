#!/bin/sh
# One-command local CI: build → test → gate → bench smoke.
#
#   scripts/ci.sh
#
# Chains the tier-1 verification (scripts/check.sh, which builds,
# runs every test suite including sc-check's own, and then the gate)
# with a short benchmark smoke run (SC_BENCH_MS=25 per case) that
# proves the hotpath bench harness — micro rows, the e2e simnet row,
# and the e2e/mt-throughput shard-scaling rows — still runs end-to-end
# without paying the full measurement budget. Everything is offline.
set -eu

cd "$(dirname "$0")/.."

scripts/check.sh

echo "==> bench smoke (SC_BENCH_MS=${SC_BENCH_MS:-25})"
SC_BENCH_MS="${SC_BENCH_MS:-25}" scripts/bench.sh

echo "==> ci passed"
