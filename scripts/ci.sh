#!/bin/sh
# One-command local CI: build → test → gate → bench smoke.
#
#   scripts/ci.sh
#
# Chains the tier-1 verification (scripts/check.sh, which builds,
# runs every test suite including sc-check's own, and then the gate)
# with a big-N convergence smoke (the 200-seed soak narrowed to 10
# seeds at 64 proxies, every fault class on) and a short benchmark
# smoke run (SC_BENCH_MS=25 per case) that proves the hotpath and
# scaleout bench harnesses still run end-to-end without paying the
# full measurement budget. Everything is offline.
set -eu

cd "$(dirname "$0")/.."

scripts/check.sh

echo "==> big-N smoke (SC_SIM_PEERS=64, ${SC_SIM_SEEDS:-10} seeds)"
SC_SIM_PEERS=64 SC_SIM_SEEDS="${SC_SIM_SEEDS:-10}" \
    cargo test -q --offline --test simnet_properties seeded_soak

echo "==> bench smoke (SC_BENCH_MS=${SC_BENCH_MS:-25})"
SC_BENCH_MS="${SC_BENCH_MS:-25}" scripts/bench.sh

echo "==> ci passed"
