#!/bin/sh
# One-command local CI: build → test → gate → scenario sweep → bench smoke.
#
#   scripts/ci.sh           # 10-seed smokes (a few minutes)
#   scripts/ci.sh --soak    # full 200-seed fault sweeps (tens of minutes)
#
# Chains the tier-1 verification (scripts/check.sh, which builds,
# runs every test suite including sc-check's own, and then the gate)
# with a big-N convergence smoke (the 200-seed soak narrowed to 10
# seeds at 64 proxies, every fault class on), the adversarial scenario
# suite at the same scale (pinned ruler regressions plus the
# false-hit-storm / peer-churn fault sweep), and a short benchmark
# smoke run (SC_BENCH_MS=25 per case) that proves the hotpath,
# scaleout, and scenario bench harnesses still run end-to-end without
# paying the full measurement budget. Everything is offline.
set -eu

cd "$(dirname "$0")/.."

SWEEP_SEEDS="${SC_SIM_SEEDS:-10}"
for arg in "$@"; do
    case "$arg" in
    --soak) SWEEP_SEEDS=200 ;;
    *)
        echo "usage: scripts/ci.sh [--soak]" >&2
        exit 2
        ;;
    esac
done

scripts/check.sh

echo "==> big-N smoke (SC_SIM_PEERS=64, ${SWEEP_SEEDS} seeds)"
SC_SIM_PEERS=64 SC_SIM_SEEDS="$SWEEP_SEEDS" \
    cargo test -q --offline --test simnet_properties seeded_soak

echo "==> scenario suite (SC_SIM_PEERS=64, ${SWEEP_SEEDS}-seed fault sweep)"
SC_SIM_PEERS=64 SC_SIM_SEEDS="$SWEEP_SEEDS" \
    cargo test -q --offline --test scenario_properties

echo "==> bench smoke (SC_BENCH_MS=${SC_BENCH_MS:-25})"
# The committed row is the baseline the request-path gate compares
# against. The smoke writes to a scratch dir, so the tracked files
# stay exactly as committed.
nspr_of() {
    awk -F': ' '/"e2e\/ns-per-request"/ { gsub(/,/, "", $2); print $2 }' "$1" 2>/dev/null
}
BASE_NSPR="$(nspr_of BENCH_hotpath.json || true)"
SMOKE_OUT="$(mktemp -d)"
SC_BENCH_OUT="$SMOKE_OUT" SC_BENCH_MS="${SC_BENCH_MS:-25}" scripts/bench.sh
rm -rf "$SMOKE_OUT"

# Hot-path regression gate: the end-to-end request cost may not
# regress more than 20% over the committed row. The smoke window is
# too short to find a scheduler-quiet run, so the gate re-measures the
# hotpath bench with its own window (SC_GATE_MS, default 300 ms) and
# retries up to three times — a real regression fails every attempt,
# a busy-box blip passes a later one.
if [ -n "$BASE_NSPR" ]; then
    GATE_MS="${SC_GATE_MS:-300}"
    GATE_JSON="$(mktemp)"
    attempt=1
    passed=""
    while [ "$attempt" -le 3 ]; do
        SC_BENCH_JSON="$GATE_JSON" SC_BENCH_MS="$GATE_MS" \
            cargo bench --offline -q -p sc-bench --bench hotpath >/dev/null
        NEW_NSPR="$(nspr_of "$GATE_JSON" || true)"
        echo "==> hotpath gate (attempt ${attempt}): e2e/ns-per-request ${NEW_NSPR} vs committed ${BASE_NSPR} (limit +20%)"
        if [ -n "$NEW_NSPR" ] &&
            awk -v new="$NEW_NSPR" -v base="$BASE_NSPR" 'BEGIN { exit !(new <= base * 1.2) }'; then
            passed=yes
            break
        fi
        attempt=$((attempt + 1))
    done
    rm -f "$GATE_JSON"
    if [ -z "$passed" ]; then
        echo "ci: e2e/ns-per-request regressed >20% (${NEW_NSPR} ns vs ${BASE_NSPR} ns committed)" >&2
        exit 1
    fi
fi

echo "==> ci passed"
