//! # summary-cache
//!
//! A from-scratch Rust reproduction of *Summary Cache: A Scalable
//! Wide-Area Web Cache Sharing Protocol* (Fan, Cao, Almeida, Broder —
//! SIGCOMM 1998 / IEEE ToN June 2000): the protocol that popularized
//! Bloom filters in networked systems and introduced the **counting
//! Bloom filter**.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`bloom`] — Bloom filters, counting Bloom filters, the MD5-derived
//!   hash family, delta journals, and the false-positive analysis;
//! * [`md5`] — RFC 1321 MD5, implemented from scratch;
//! * [`cache`] — byte-budget LRU caches with the paper's web policy;
//! * [`trace`] — calibrated synthetic workloads standing in for the
//!   paper's five proprietary traces;
//! * [`core`] — the summary-cache protocol: directory summaries
//!   (exact / server-name / Bloom), update policies, peer tables, the
//!   wire-cost model and the Section V-F scalability calculator;
//! * [`wire`] — ICPv2 (RFC 2186) plus the paper's `ICP_OP_DIRUPDATE`
//!   extension, and a minimal HTTP/1.x codec;
//! * [`sim`] — trace-driven simulators for Figs. 1–2 and 5–8;
//! * [`proxy`] — a live threaded proxy cluster reproducing the testbed
//!   experiments (Tables II, IV, V), with a per-daemon admin endpoint
//!   (`/metrics`, `/json`, `/events`);
//! * [`obs`] — the std-only metrics registry / event journal every
//!   number above flows through;
//! * [`json`] — the hand-rolled JSON used for results and snapshots;
//! * [`util`] — seeded RNG, property-test harness, bench harness, and
//!   the shared convergence/deadline-polling helper.
//!
//! ## Quick start
//!
//! ```
//! use summary_cache::core::{ProxySummary, SummaryKind, PeerTable, PeerId};
//!
//! // A proxy summarizes its cache directory as a Bloom filter…
//! let mut mine = ProxySummary::new(SummaryKind::recommended(), 64 << 20);
//! mine.insert(b"http://example.com/a", b"example.com");
//! mine.publish();
//!
//! // …and peers probe the published snapshot before querying anyone.
//! let mut peers = PeerTable::new();
//! peers.install(1 as PeerId, mine.snapshot_published());
//! assert_eq!(peers.probe_all(b"http://example.com/a", b"example.com"), vec![1]);
//! assert!(peers.probe_all(b"http://example.com/b", b"example.com").is_empty());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the per-table/figure experiment
//! harnesses.

pub use sc_bloom as bloom;
pub use sc_cache as cache;
pub use sc_json as json;
pub use sc_md5 as md5;
pub use sc_obs as obs;
pub use sc_proxy as proxy;
pub use sc_sim as sim;
pub use sc_trace as trace;
pub use sc_util as util;
pub use sc_wire as wire;
pub use summary_cache_core as core;
