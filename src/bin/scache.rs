//! `scache` — the summary-cache command line.
//!
//! Run the pieces of the system as real processes on real sockets:
//!
//! ```text
//! scache origin    --listen 127.0.0.1:8081 --delay-ms 100
//! scache proxy     --id 0 --http 127.0.0.1:3128 --icp 127.0.0.1:3130 \
//!                  --origin 127.0.0.1:8081 --mode sc \
//!                  --peer 1=127.0.0.1:3129/127.0.0.1:3131
//! scache gen-trace --profile UPisa --scale 10 --out upisa.jsonl
//! scache replay    --trace upisa.jsonl --proxy 127.0.0.1:3128 \
//!                  --proxy 127.0.0.1:3129 --tasks 20 --mode per-client
//! scache estimate  --proxies 100 --cache-gb 8 --load-factor 16
//! ```
//!
//! Long-running subcommands (`origin`, `proxy`) run until stdin reaches
//! EOF (Ctrl-D, or closing the pipe that feeds them); proxies print a
//! stats line every 10 s and a final report on exit.

use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::time::Duration;
use summary_cache::core::scalability::{estimate, Deployment};
use summary_cache::core::UpdatePolicy;
use summary_cache::proxy::client::{plan_replay, ProxyClient, ReplayMode};
use summary_cache::proxy::config::PeerAddr;
use summary_cache::proxy::daemon::Daemon;
use summary_cache::proxy::origin::Origin;
use summary_cache::proxy::stats::ProxyStats;
use summary_cache::proxy::{Mode, ProxyConfig};
use summary_cache::trace::io as trace_io;
use summary_cache::trace::profile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("origin") => cmd_origin(&args[1..]),
        Some("proxy") => cmd_proxy(&args[1..]),
        Some("gen-trace") => cmd_gen_trace(&args[1..]),
        Some("import-squid") => cmd_import_squid(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
scache — summary cache (Fan/Cao/Almeida/Broder, SIGCOMM '98) tooling

subcommands:
  origin    --listen ADDR [--delay-ms N]
            run the origin-server emulator
  proxy     --id N --http ADDR --icp ADDR --origin ADDR
            [--mode no-icp|icp|sc] [--cache-mb N] [--expected-docs N]
            [--threshold FRACTION] [--peer ID=HTTP/ICP]...
            run one proxy daemon (EOF on stdin prints final stats);
            also serves an observability endpoint (/metrics, /json,
            /events) on an ephemeral loopback port, printed at start
  gen-trace --profile NAME [--scale N] --out FILE[.jsonl|.log]
            generate a synthetic workload (DEC|UCB|UPisa|Questnet|NLANR)
  import-squid --log ACCESS_LOG --groups N --out FILE[.jsonl|.log]
            convert a real Squid native access.log into a trace
  replay    --trace FILE --proxy ADDR... [--tasks N]
            [--mode per-client|round-robin]
            replay a trace against running proxies
  estimate  --proxies N [--cache-gb N] [--load-factor N] [--hashes N]
            [--threshold FRACTION]
            Section V-F deployment arithmetic
";

/// Pull `--name value` out of an argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// All values of a repeatable `--name value` flag.
fn flags<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn parse_or_die<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad {what}: {v:?}");
        std::process::exit(2);
    })
}

fn cmd_origin(args: &[String]) -> i32 {
    let listen: SocketAddr = parse_or_die(
        flag(args, "--listen").unwrap_or("127.0.0.1:8081"),
        "--listen address",
    );
    let delay = Duration::from_millis(
        flag(args, "--delay-ms").map_or(100, |v| parse_or_die(v, "--delay-ms")),
    );
    let origin = Origin::spawn_at(listen, delay).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    println!("origin listening on {} (delay {:?})", origin.addr, delay);
    wait_for_stdin_eof();
    println!(
        "served {} requests, {} bytes",
        origin
            .stats
            .requests
            .load(std::sync::atomic::Ordering::Relaxed),
        origin.stats.bytes.load(std::sync::atomic::Ordering::Relaxed)
    );
    origin.shutdown();
    0
}

/// Block until stdin is exhausted — the shutdown signal for the
/// long-running subcommands (works under pipes and terminals alike).
fn wait_for_stdin_eof() {
    use std::io::Read;
    let mut sink = [0u8; 1024];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
}

fn parse_peer(spec: &str) -> PeerAddr {
    // ID=HTTP/ICP, e.g. 1=127.0.0.1:3129/127.0.0.1:3131
    let bad = || -> ! {
        eprintln!("bad --peer {spec:?}; expected ID=HTTP_ADDR/ICP_ADDR");
        std::process::exit(2);
    };
    let Some((id, rest)) = spec.split_once('=') else { bad() };
    let Some((http, icp)) = rest.split_once('/') else { bad() };
    PeerAddr {
        id: parse_or_die(id, "peer id"),
        http: parse_or_die(http, "peer HTTP address"),
        icp: parse_or_die(icp, "peer ICP address"),
    }
}

fn cmd_proxy(args: &[String]) -> i32 {
    let id: u32 = parse_or_die(flag(args, "--id").unwrap_or("0"), "--id");
    let http: SocketAddr = parse_or_die(
        flag(args, "--http").unwrap_or("127.0.0.1:3128"),
        "--http address",
    );
    let icp: SocketAddr = parse_or_die(
        flag(args, "--icp").unwrap_or("127.0.0.1:3130"),
        "--icp address",
    );
    let origin: SocketAddr = parse_or_die(
        flag(args, "--origin").unwrap_or("127.0.0.1:8081"),
        "--origin address",
    );
    let cache_mb: u64 = flag(args, "--cache-mb").map_or(75, |v| parse_or_die(v, "--cache-mb"));
    let expected_docs: u64 =
        flag(args, "--expected-docs").map_or(16_000, |v| parse_or_die(v, "--expected-docs"));
    let threshold: f64 =
        flag(args, "--threshold").map_or(0.01, |v| parse_or_die(v, "--threshold"));
    let mode = match flag(args, "--mode").unwrap_or("sc") {
        "no-icp" => Mode::NoIcp,
        "icp" => Mode::Icp,
        "sc" => Mode::SummaryCache {
            load_factor: 8,
            hashes: 4,
            policy: UpdatePolicy::Threshold(threshold),
        },
        other => {
            eprintln!("bad --mode {other:?}; expected no-icp|icp|sc");
            return 2;
        }
    };
    let peers: Vec<PeerAddr> = flags(args, "--peer").into_iter().map(parse_peer).collect();

    let cfg = match ProxyConfig::builder()
        .id(id)
        .cache_bytes(cache_mb << 20)
        .expected_docs(expected_docs)
        .mode(mode)
        .peers(peers)
        .origin(origin)
        .icp_timeout_ms(500)
        .keepalive_ms(1_000)
        .build()
    {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("bad proxy configuration: {e}");
            return 2;
        }
    };
    let listener = TcpListener::bind(http).unwrap_or_else(|e| {
        eprintln!("cannot bind HTTP {http}: {e}");
        std::process::exit(1);
    });
    let udp = UdpSocket::bind(icp).unwrap_or_else(|e| {
        eprintln!("cannot bind ICP {icp}: {e}");
        std::process::exit(1);
    });
    let daemon = Daemon::spawn_on(cfg, listener, udp).expect("spawn daemon");
    println!(
        "proxy {} serving HTTP on {} / ICP on {} ({} mode)",
        daemon.id,
        daemon.http_addr,
        daemon.icp_addr,
        flag(args, "--mode").unwrap_or("sc"),
    );
    println!(
        "admin endpoint on http://{} (/metrics, /json, /events)",
        daemon.admin_addr
    );
    // Periodic stats line; the thread dies with the process.
    let stats = daemon.stats.clone();
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_secs(10));
        print_stats(&stats);
    });
    wait_for_stdin_eof();
    println!("final:");
    print_stats(&daemon.stats);
    daemon.shutdown();
    0
}

fn print_stats(stats: &ProxyStats) {
    let s = stats.snapshot();
    println!(
        "reqs {:>8}  hit {:>6.2}%  remote {:>6}  udp {:>8}  updates {:>6}/{:<6}  lat {:>7.2} ms",
        s.http_requests,
        s.hit_ratio() * 100.0,
        s.remote_hits,
        s.udp_messages(),
        s.updates_sent,
        s.updates_received,
        s.avg_latency_ms(),
    );
}

fn cmd_gen_trace(args: &[String]) -> i32 {
    let name = flag(args, "--profile").unwrap_or("UPisa");
    let scale: usize = flag(args, "--scale").map_or(1, |v| parse_or_die(v, "--scale"));
    let Some(out) = flag(args, "--out") else {
        eprintln!("--out FILE is required");
        return 2;
    };
    let Some(p) = profile(name) else {
        eprintln!("unknown profile {name:?}; known: DEC UCB UPisa Questnet NLANR");
        return 2;
    };
    let trace = if scale <= 1 { p.generate() } else { p.generate_scaled(scale) };
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(1);
    });
    let result = if out.ends_with(".log") {
        trace_io::save_log(&trace, file)
    } else {
        trace_io::save_jsonl(&trace, file)
    };
    if let Err(e) = result {
        eprintln!("write failed: {e}");
        return 1;
    }
    println!(
        "wrote {}: {} requests, {} groups",
        out,
        trace.len(),
        trace.groups
    );
    0
}

fn cmd_import_squid(args: &[String]) -> i32 {
    let Some(log) = flag(args, "--log") else {
        eprintln!("--log ACCESS_LOG is required");
        return 2;
    };
    let Some(out) = flag(args, "--out") else {
        eprintln!("--out FILE is required");
        return 2;
    };
    let groups: u32 = flag(args, "--groups").map_or(4, |v| parse_or_die(v, "--groups"));
    let file = std::fs::File::open(log).unwrap_or_else(|e| {
        eprintln!("cannot open {log}: {e}");
        std::process::exit(1);
    });
    let name = std::path::Path::new(log)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("squid");
    let (trace, stats) =
        summary_cache::trace::squid::load_squid_log(file, name, groups).unwrap_or_else(|e| {
            eprintln!("cannot parse {log}: {e}");
            std::process::exit(1);
        });
    let outf = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(1);
    });
    let result = if out.ends_with(".log") {
        trace_io::save_log(&trace, outf)
    } else {
        trace_io::save_jsonl(&trace, outf)
    };
    if let Err(e) = result {
        eprintln!("write failed: {e}");
        return 1;
    }
    println!(
        "imported {} of {} lines ({} non-GET, {} empty skipped) -> {}",
        stats.imported, stats.lines, stats.skipped_method, stats.skipped_empty, out
    );
    0
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(path) = flag(args, "--trace") else {
        eprintln!("--trace FILE is required");
        return 2;
    };
    let proxies: Vec<SocketAddr> = flags(args, "--proxy")
        .into_iter()
        .map(|v| parse_or_die(v, "--proxy address"))
        .collect();
    if proxies.is_empty() {
        eprintln!("at least one --proxy ADDR is required");
        return 2;
    }
    let tasks: usize = flag(args, "--tasks").map_or(20, |v| parse_or_die(v, "--tasks"));
    let mode = match flag(args, "--mode").unwrap_or("per-client") {
        "per-client" => ReplayMode::PerClient,
        "round-robin" => ReplayMode::RoundRobin,
        other => {
            eprintln!("bad --mode {other:?}");
            return 2;
        }
    };
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut trace = if path.ends_with(".log") {
        trace_io::load_log(file)
    } else {
        trace_io::load_jsonl(file)
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    trace.groups = proxies.len() as u32; // regroup onto however many proxies we got
    println!(
        "replaying {} requests onto {} proxies ({} tasks each)",
        trace.len(),
        proxies.len(),
        tasks
    );
    let plans = plan_replay(&trace, tasks, mode);
    let stats = std::sync::Arc::new(ProxyStats::default());
    let t0 = std::time::Instant::now();
    let mut handles = Vec::new();
    for (tid, plan) in plans.into_iter().enumerate() {
        if plan.is_empty() {
            continue;
        }
        let addr = proxies[tid % proxies.len()];
        let stats = stats.clone();
        handles.push(std::thread::spawn(move || -> std::io::Result<()> {
            let mut client = ProxyClient::connect(addr, stats)?;
            for (url, meta) in plan {
                client.get(&url, meta)?;
            }
            Ok(())
        }));
    }
    for h in handles {
        if let Err(e) = h.join().expect("driver thread") {
            eprintln!("driver error: {e}");
            std::process::exit(1);
        }
    }
    let s = stats.snapshot();
    println!(
        "done in {:.1}s: {} requests, mean latency {:.2} ms",
        t0.elapsed().as_secs_f64(),
        s.latency_count,
        s.avg_latency_ms()
    );
    0
}

fn cmd_estimate(args: &[String]) -> i32 {
    let d = Deployment {
        proxies: flag(args, "--proxies").map_or(100, |v| parse_or_die(v, "--proxies")),
        cache_bytes: flag(args, "--cache-gb").map_or(8u64 << 30, |v| {
            parse_or_die::<u64>(v, "--cache-gb") << 30
        }),
        load_factor: flag(args, "--load-factor").map_or(16, |v| parse_or_die(v, "--load-factor")),
        hashes: flag(args, "--hashes").map_or(10, |v| parse_or_die(v, "--hashes")),
        threshold: flag(args, "--threshold").map_or(0.01, |v| parse_or_die(v, "--threshold")),
    };
    let e = estimate(d);
    println!("deployment: {} proxies, {} GB caches, load factor {}, k = {}, threshold {}",
        d.proxies, d.cache_bytes >> 30, d.load_factor, d.hashes, d.threshold);
    println!("  documents per proxy        {:>12}", e.docs_per_proxy);
    println!("  one summary                {:>9} KiB", e.summary_bytes >> 10);
    println!("  peer summaries per proxy   {:>9} MiB", e.peer_memory_bytes >> 20);
    println!("  own counters               {:>9} MiB", e.counter_bytes >> 20);
    println!("  requests between updates   {:>12}", e.requests_between_updates);
    println!("  update messages / request  {:>12.5}", e.update_messages_per_request);
    println!("  false-hit prob / request   {:>12.5}", e.false_hit_per_request);
    println!("  protocol msgs / request    {:>12.5}", e.overhead_messages_per_request);
    println!("  one update message         {:>9} KiB", e.update_message_bytes >> 10);
    0
}
